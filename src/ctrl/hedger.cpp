#include "ctrl/hedger.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace mdp::ctrl {

AdaptiveHedger::AdaptiveHedger(HedgerConfig cfg) : cfg_(cfg) {
  if (cfg_.min_replicas == 0) cfg_.min_replicas = 1;
  if (cfg_.max_replicas < cfg_.min_replicas)
    cfg_.max_replicas = cfg_.min_replicas;
  if (cfg_.sustain_ticks < 1) cfg_.sustain_ticks = 1;
  replicas_ = cfg_.min_replicas;
}

std::size_t AdaptiveHedger::update(std::uint64_t worst_p99_ns,
                                   std::uint64_t samples,
                                   std::uint64_t slo_target_ns) {
  if (!cfg_.enabled || slo_target_ns == 0) return replicas_;
  if (cooldown_ > 0) --cooldown_;
  if (samples < cfg_.min_samples) {
    // No signal: hold streaks, don't let silence accumulate toward a
    // change (mirrors the state machine's has_signal rule).
    raise_streak_ = 0;
    lower_streak_ = 0;
    return replicas_;
  }
  const double inflation = static_cast<double>(worst_p99_ns) /
                           static_cast<double>(slo_target_ns);
  if (inflation > cfg_.raise_threshold) {
    lower_streak_ = 0;
    if (++raise_streak_ >= cfg_.sustain_ticks && cooldown_ == 0 &&
        replicas_ < cfg_.max_replicas) {
      ++replicas_;
      ++raises_;
      raise_streak_ = 0;
      cooldown_ = cfg_.cooldown_ticks;
    }
  } else if (inflation < cfg_.lower_threshold) {
    raise_streak_ = 0;
    if (++lower_streak_ >= cfg_.sustain_ticks && cooldown_ == 0 &&
        replicas_ > cfg_.min_replicas) {
      --replicas_;
      ++lowers_;
      lower_streak_ = 0;
      cooldown_ = cfg_.cooldown_ticks;
    }
  } else {
    raise_streak_ = 0;
    lower_streak_ = 0;
  }
  return replicas_;
}

// --- HedgeTimeoutController -----------------------------------------------------

HedgeTimeoutController::HedgeTimeoutController(HedgeTimeoutConfig cfg)
    : cfg_(cfg) {
  if (cfg_.min_timeout_ns == 0) cfg_.min_timeout_ns = 1;
  if (cfg_.integral_limit < 0) cfg_.integral_limit = 0;
  if (cfg_.deadband < 0) cfg_.deadband = 0;
}

std::uint64_t HedgeTimeoutController::update(std::uint64_t p50_ns,
                                             std::uint64_t p99_ns,
                                             std::uint64_t samples,
                                             std::uint64_t slo_target_ns) {
  if (!cfg_.enabled || slo_target_ns == 0) return 0;
  if (samples < cfg_.min_samples) return timeout_ns_;  // hold, no signal

  const double error =
      (static_cast<double>(p99_ns) - static_cast<double>(slo_target_ns)) /
      static_cast<double>(slo_target_ns);
  integral_ = std::clamp(integral_ + error, -cfg_.integral_limit,
                         cfg_.integral_limit);
  const double derivative = primed_ ? error - prev_error_ : 0.0;
  prev_error_ = error;
  primed_ = true;

  // Positive output = tail too hot = slide the deadline toward the floor.
  const double output =
      cfg_.kp * error + cfg_.ki * integral_ + cfg_.kd * derivative;
  position_ = std::clamp(position_ - output, 0.0, 1.0);

  const std::uint64_t ceiling_raw =
      cfg_.max_timeout_ns ? cfg_.max_timeout_ns : slo_target_ns;
  const std::uint64_t floor_ns = std::max(p50_ns, cfg_.min_timeout_ns);
  const std::uint64_t ceiling_ns = std::max(ceiling_raw, floor_ns);
  const std::uint64_t candidate =
      floor_ns + static_cast<std::uint64_t>(
                     position_ * static_cast<double>(ceiling_ns - floor_ns));

  if (timeout_ns_ != 0) {
    // Deadband: don't twitch the scheduler for sub-noise moves.
    const double rel =
        std::abs(static_cast<double>(candidate) -
                 static_cast<double>(timeout_ns_)) /
        static_cast<double>(timeout_ns_);
    if (rel < cfg_.deadband) return timeout_ns_;
  }
  if (candidate != timeout_ns_) {
    timeout_ns_ = candidate;
    ++adjustments_;
  }
  return timeout_ns_;
}

// --- GranularityController ------------------------------------------------------

GranularityController::GranularityController(GranularityConfig cfg)
    : cfg_(cfg), granularity_(cfg.baseline) {
  if (cfg_.sustain_ticks < 1) cfg_.sustain_ticks = 1;
}

core::Granularity GranularityController::escalate(
    const char* dominant_stage) const {
  using core::Granularity;
  const bool service_pain =
      dominant_stage != nullptr &&
      std::strcmp(dominant_stage, "service") == 0;
  switch (granularity_) {
    case Granularity::kNone:
      return Granularity::kPacketHedge;
    case Granularity::kPacketHedge:
      // Queueing pain re-queues fine with hedges alone; service pain
      // needs whole-flow copies on a path whose core is not stolen.
      return service_pain ? Granularity::kFlowReplica : Granularity::kBoth;
    case Granularity::kFlowReplica:
      return Granularity::kBoth;
    case Granularity::kBoth:
      return Granularity::kBoth;
  }
  return granularity_;
}

core::Granularity GranularityController::deescalate() const {
  using core::Granularity;
  if (granularity_ == cfg_.baseline) return granularity_;
  switch (granularity_) {
    case Granularity::kBoth:
      // Step down through whichever single mode the baseline is not, so
      // the ladder converges on baseline rather than oscillating.
      return cfg_.baseline == Granularity::kFlowReplica
                 ? Granularity::kFlowReplica
                 : Granularity::kPacketHedge;
    case Granularity::kFlowReplica:
    case Granularity::kPacketHedge:
      return cfg_.baseline;
    case Granularity::kNone:
      return cfg_.baseline;
  }
  return cfg_.baseline;
}

core::Granularity GranularityController::update(std::uint64_t worst_p99_ns,
                                                std::uint64_t samples,
                                                std::uint64_t slo_target_ns,
                                                const char* dominant_stage) {
  if (!cfg_.enabled || slo_target_ns == 0) return granularity_;
  if (cooldown_ > 0) --cooldown_;
  if (samples < cfg_.min_samples) {
    raise_streak_ = 0;
    lower_streak_ = 0;
    return granularity_;
  }
  const double inflation = static_cast<double>(worst_p99_ns) /
                           static_cast<double>(slo_target_ns);
  if (inflation > cfg_.raise_threshold) {
    lower_streak_ = 0;
    if (++raise_streak_ >= cfg_.sustain_ticks && cooldown_ == 0) {
      const core::Granularity next = escalate(dominant_stage);
      raise_streak_ = 0;
      if (next != granularity_) {
        granularity_ = next;
        ++shifts_;
        cooldown_ = cfg_.cooldown_ticks;
      }
    }
  } else if (inflation < cfg_.lower_threshold) {
    raise_streak_ = 0;
    if (++lower_streak_ >= cfg_.sustain_ticks && cooldown_ == 0) {
      const core::Granularity next = deescalate();
      lower_streak_ = 0;
      if (next != granularity_) {
        granularity_ = next;
        ++shifts_;
        cooldown_ = cfg_.cooldown_ticks;
      }
    }
  } else {
    raise_streak_ = 0;
    lower_streak_ = 0;
  }
  return granularity_;
}

}  // namespace mdp::ctrl
