#include "ctrl/path_state.hpp"

namespace mdp::ctrl {

const char* path_state_name(PathState s) noexcept {
  switch (s) {
    case PathState::kActive: return "active";
    case PathState::kQuarantined: return "quarantined";
    case PathState::kDraining: return "draining";
    case PathState::kReinstated: return "reinstated";
  }
  return "?";
}

PathStateMachine::PathStateMachine(PathStateConfig cfg) : cfg_(cfg) {
  if (cfg_.quarantine_after < 2) cfg_.quarantine_after = 2;
  if (cfg_.probation_probes == 0) cfg_.probation_probes = 1;
}

bool PathStateMachine::on_tick(const TickInput& in) {
  const PathState before = state_;
  switch (state_) {
    case PathState::kActive:
      // A tick without signal breaks the streak: consecutive means
      // consecutive *judged* windows, and silence is not evidence.
      if (in.has_signal && in.breach) {
        if (++breach_streak_ >= cfg_.quarantine_after) {
          state_ = PathState::kQuarantined;
          ++quarantines_;
          breach_streak_ = 0;
        }
      } else {
        breach_streak_ = 0;
      }
      break;

    case PathState::kQuarantined:
      // One full tick masked (new dispatches already stopped); start
      // draining what is still in flight.
      state_ = PathState::kDraining;
      break;

    case PathState::kDraining:
      if (in.drained) {
        state_ = PathState::kReinstated;
        probation_ = 0;
      }
      break;

    case PathState::kReinstated:
      if (in.violated_probes > 0) {
        // Probation failed: the path is still sick. Back to quarantine —
        // this is the anti-flap edge; it never rejoins ACTIVE directly.
        state_ = PathState::kQuarantined;
        ++quarantines_;
        probation_ = 0;
      } else {
        probation_ += in.clean_probes;
        if (probation_ >= cfg_.probation_probes) {
          state_ = PathState::kActive;
          ++reinstatements_;
          probation_ = 0;
          breach_streak_ = 0;
        }
      }
      break;
  }
  return state_ != before;
}

}  // namespace mdp::ctrl
