#include "ctrl/controller.hpp"

#include <cstring>
#include <iterator>

#include "trace/json.hpp"

namespace mdp::ctrl {

std::uint32_t decision_reason_code(const char* reason) noexcept {
  static constexpr const char* kReasons[] = {
      "slo_breach",       "backlog_breach",   "slo+backlog_breach",
      "probe_breach",     "drain_start",      "drained",
      "probation_passed", "hedge_raise",      "hedge_lower",
      "hedge_timeout",    "tenant_throttle",  "tenant_shed",
      "tenant_probation", "tenant_reinstate", "granularity_shift",
      "forecast_prehedge", "forecast_probe",  "forecast_prequarantine",
      "forecast_restore"};
  for (std::uint32_t i = 0; i < std::size(kReasons); ++i)
    if (std::strcmp(reason, kReasons[i]) == 0) return i + 1;
  return 0;
}

Controller::Controller(Config cfg, Actuator& actuator, SloMonitor& monitor)
    : cfg_(cfg),
      act_(actuator),
      mon_(monitor),
      hedger_(cfg.hedger),
      hedge_timeout_(cfg.hedge_timeout),
      gran_(cfg.granularity) {
  mon_.set_slo_target_ns(cfg_.slo_target_ns);
  paths_.resize(act_.num_paths());
  for (auto& p : paths_) p.fsm = PathStateMachine(cfg_.path);
  if (cfg_.decision_log_capacity == 0) cfg_.decision_log_capacity = 1;
  if (cfg_.forecast.enabled) {
    ForecastConfig& fc = cfg_.forecast;
    if (fc.prehedge_threshold <= 0.0) fc.prehedge_threshold = 0.9;
    if (fc.prequarantine_threshold <= fc.prehedge_threshold)
      fc.prequarantine_threshold = fc.prehedge_threshold * 1.5;
    if (fc.restore_threshold >= fc.prehedge_threshold)
      fc.restore_threshold = fc.prehedge_threshold * 0.75;
    if (fc.max_hold_ticks == 0) fc.max_hold_ticks = 1;
    if (fc.probe_grant == 0) fc.probe_grant = cfg_.probe_grant_per_tick;
    est_ = std::make_unique<forecast::TailEstimator>(paths_.size(),
                                                     fc.estimator);
  }
}

void Controller::set_slo_target_ns(std::uint64_t t) {
  cfg_.slo_target_ns = t;
  mon_.set_slo_target_ns(t);
}

std::size_t Controller::active_count() const {
  std::size_t n = 0;
  for (const auto& p : paths_)
    if (p.fsm.state() == PathState::kActive) ++n;
  return n;
}

std::size_t Controller::serving_count() const {
  std::size_t n = 0;
  for (const auto& p : paths_)
    if (p.fsm.state() == PathState::kActive && !p.pre_quarantined) ++n;
  return n;
}

void Controller::open_fp_episode(std::size_t p) {
  PathCtl& pc = paths_[p];
  if (pc.fp_pending) return;
  pc.fp_pending = true;
  pc.fp_since = tick_;
}

void Controller::attach_recorder(telem::FlightRecorder* rec,
                                 std::uint64_t dump_window_ns) {
  recorder_ = rec;
  rec_chan_ = rec ? rec->channel("ctrl") : nullptr;
  dump_window_ns_ = dump_window_ns;
}

void Controller::log_decision(Decision d) {
  // Every decision records the granularity in force while the lever is
  // enabled — the log then shows which regime each action happened in.
  d.granularity = gran_.granularity();
  d.granularity_logged = cfg_.granularity.enabled;
  if (decisions_.size() >= cfg_.decision_log_capacity) {
    decisions_.erase(decisions_.begin());
    ++decisions_evicted_;
  }
  decisions_.push_back(d);
  if (rec_chan_)
    rec_chan_->emit(
        d.now_ns, telem::EventType::kCtrlDecision,
        d.path < Decision::kGranularity ? d.path : telem::kAllPaths,
        decision_reason_code(d.reason), d.p99_ns);
  // Quarantine post-mortem: snapshot the merged event timeline as it
  // stood at the moment the path was cut. The dump INCLUDES the
  // kCtrlDecision event just emitted, so the artifact is self-dating.
  // Cutting a TENANT (kShed) is the same severity of action and gets the
  // same artifact.
  const bool cut_path = d.path < Decision::kGranularity &&
                        d.to == PathState::kQuarantined;
  const bool cut_tenant = d.path == Decision::kTenant &&
                          d.tenant_to == TenantState::kShed;
  if (recorder_ && (cut_path || cut_tenant)) {
    last_quarantine_dump_ = recorder_->dump_json(dump_window_ns_);
    ++auto_dumps_;
  }
}

void Controller::tick(std::uint64_t now_ns) {
  ++tick_;
  if (exporter_) exporter_->begin_tick(tick_, now_ns);
  std::uint64_t worst_serving_p99 = 0;
  std::uint64_t worst_serving_p50 = 0;
  std::uint64_t serving_samples = 0;
  const char* worst_dominant_stage = "";
  std::uint64_t worst_dominant_ns = 0;
  // Worst actionable forecast across serving paths: drives the global
  // pre-hedge after the loop.
  forecast::Forecast fc_worst;
  std::uint16_t fc_worst_path = 0;
  bool have_fc_worst = false;

  for (std::size_t p = 0; p < paths_.size(); ++p) {
    PathCtl& pc = paths_[p];
    const PathState before = pc.fsm.state();
    const WindowStats w = mon_.harvest(p);
    const std::uint64_t backlog = act_.path_backlog(p);

    // Forecast stage, step 1: absorb the window (interpolated quantiles —
    // the estimator differentiates the series, and the quantized upper
    // edges would turn its trend term into staircase noise) and read the
    // path's forecast before anything else judges the window.
    forecast::Forecast fc;
    bool have_fc = false;
    if (est_) {
      forecast::WindowSample s;
      s.samples = w.samples;
      s.p99_ns = w.quantile_ns(0.99);
      s.p999_ns = w.quantile_ns(0.999);
      s.stage_sum_ns = w.stage_sum_ns;
      est_->observe(p, s);
      fc = est_->forecast(p);
      have_fc = est_->windows_seen(p) > 0;
    }

    if (exporter_) {
      telem::PathTickStats ts;
      ts.path = static_cast<std::uint16_t>(p);
      ts.samples = w.samples;
      ts.violations = w.violations;
      ts.sum_ns = w.sum_ns;
      ts.p50_ns = w.p50_ns;
      ts.p99_ns = w.p99_ns;
      ts.p999_ns = w.p999_ns;
      ts.max_ns = w.max_ns;
      ts.stage_sum_ns = w.stage_sum_ns;
      if (have_fc) {
        ts.has_forecast = true;
        ts.fc_p99_ns = fc.p99_ns;
        ts.fc_p999_ns = fc.p999_ns;
        ts.fc_confidence = fc.confidence;
        ts.fc_horizon_ticks = fc.horizon_ticks;
        ts.fc_actionable = fc.actionable;
        if (fc.has_stage && fc.dominant_stage_slope > 0.0)
          ts.fc_stage = trace::stage_name(fc.dominant_stage);
      }
      exporter_->add_path(ts);
    }

    // Stage verdict: WHERE this window's latency went, when the feeder
    // supplied spans (observe_span) rather than bare scalars.
    const char* dominant_stage = "";
    std::uint64_t dominant_ns = 0;
    if (w.has_stage_evidence()) {
      dominant_stage = trace::stage_name(w.dominant_stage());
      dominant_ns = w.dominant_stage_ns();
    }

    // Forecast stage, step 2: the proactive per-path actions, BEFORE the
    // reactive judge sees the window. A forecast may soften admission
    // (kProbeOnly) and schedule probes; it may never hard-quarantine —
    // that stays the reactive FSM's exclusive call, fed by the probe
    // evidence this very actuation keeps flowing.
    if (est_ && before == PathState::kActive) {
      const double slo = static_cast<double>(cfg_.slo_target_ns);
      const double fc999 = static_cast<double>(fc.p999_ns);
      if (pc.pre_quarantined) {
        const bool calmed =
            have_fc && fc999 < cfg_.forecast.restore_threshold * slo;
        const bool expired =
            tick_ - pc.pre_quarantined_since >= cfg_.forecast.max_hold_ticks;
        if (calmed || expired) {
          // Probe-first means release-first too: without reactive
          // confirmation inside the hold window the path goes back to
          // full admission (and the episode resolves as a false positive
          // unless a breach landed meanwhile).
          act_.set_admission(p, Admission::kEnabled);
          pc.pre_quarantined = false;
          ++forecast_restores_;
          Decision d;
          d.tick = tick_;
          d.now_ns = now_ns;
          d.path = static_cast<std::uint16_t>(p);
          d.from = before;
          d.to = before;
          d.reason = "forecast_restore";
          d.p99_ns = w.p99_ns;
          d.samples = w.samples;
          d.violations = w.violations;
          d.backlog = backlog;
          d.replicas = hedger_.replicas();
          d.hedge_timeout_ns = hedge_timeout_.timeout_ns();
          d.fc_p99_ns = fc.p99_ns;
          d.fc_p999_ns = fc.p999_ns;
          d.fc_confidence = fc.confidence;
          d.fc_horizon_ticks = fc.horizon_ticks;
          d.forecast_logged = true;
          log_decision(d);
        } else {
          act_.grant_probes(p, cfg_.forecast.probe_grant);
        }
      } else if (fc.actionable) {
        if (fc999 >= cfg_.forecast.prequarantine_threshold * slo &&
            serving_count() > cfg_.min_serving_paths) {
          act_.set_admission(p, Admission::kProbeOnly);
          act_.grant_probes(p, cfg_.forecast.probe_grant);
          pc.pre_quarantined = true;
          pc.pre_quarantined_since = tick_;
          ++forecast_prequarantines_;
          open_fp_episode(p);
          Decision d;
          d.tick = tick_;
          d.now_ns = now_ns;
          d.path = static_cast<std::uint16_t>(p);
          d.from = before;
          d.to = before;
          d.reason = "forecast_prequarantine";
          d.p99_ns = w.p99_ns;
          d.samples = w.samples;
          d.violations = w.violations;
          d.backlog = backlog;
          d.replicas = hedger_.replicas();
          d.dominant_stage = dominant_stage;
          d.dominant_stage_ns = dominant_ns;
          d.hedge_timeout_ns = hedge_timeout_.timeout_ns();
          d.fc_p99_ns = fc.p99_ns;
          d.fc_p999_ns = fc.p999_ns;
          d.fc_confidence = fc.confidence;
          d.fc_horizon_ticks = fc.horizon_ticks;
          d.forecast_logged = true;
          log_decision(d);
        } else if (fc999 >= cfg_.forecast.prehedge_threshold * slo &&
                   fc.has_stage && fc.dominant_stage_slope > 0.0 &&
                   (pc.last_forecast_probe_tick == 0 ||
                    tick_ - pc.last_forecast_probe_tick >=
                        cfg_.forecast.probe_cooldown_ticks)) {
          // Stage-aware early evidence: the path whose TRENDING stage is
          // worsening gets probe credits now, so by the time the tail
          // arrives the reactive judge has samples to rule on.
          act_.grant_probes(p, cfg_.forecast.probe_grant);
          pc.last_forecast_probe_tick = tick_;
          ++forecast_probes_;
          open_fp_episode(p);
          Decision d;
          d.tick = tick_;
          d.now_ns = now_ns;
          d.path = static_cast<std::uint16_t>(p);
          d.from = before;
          d.to = before;
          d.reason = "forecast_probe";
          d.p99_ns = w.p99_ns;
          d.samples = w.samples;
          d.violations = w.violations;
          d.backlog = backlog;
          d.replicas = hedger_.replicas();
          d.dominant_stage = trace::stage_name(fc.dominant_stage);
          d.dominant_stage_ns =
              static_cast<std::uint64_t>(fc.dominant_stage_slope);
          d.hedge_timeout_ns = hedge_timeout_.timeout_ns();
          d.fc_p99_ns = fc.p99_ns;
          d.fc_p999_ns = fc.p999_ns;
          d.fc_confidence = fc.confidence;
          d.fc_horizon_ticks = fc.horizon_ticks;
          d.forecast_logged = true;
          log_decision(d);
        }
      }
    }

    TickInput in;
    in.has_signal = w.samples >= cfg_.min_samples;
    const bool slo_breach =
        in.has_signal && w.violation_fraction() > cfg_.violation_threshold;
    const bool backlog_breach =
        cfg_.backlog_limit > 0 && backlog > cfg_.backlog_limit;
    in.breach = slo_breach || backlog_breach;
    if (slo_breach) ++breach_windows_;
    // Forecast stage, step 3: resolve confirmation episodes against the
    // reactive judge's verdict — a breach inside the window confirms the
    // earlier actuation, expiry books it as a false positive.
    if (est_ && pc.fp_pending) {
      if (slo_breach) {
        ++forecast_confirmed_;
        pc.fp_pending = false;
      } else if (tick_ - pc.fp_since > cfg_.forecast.confirm_window_ticks) {
        ++forecast_false_positives_;
        pc.fp_pending = false;
      }
    }
    if (in.breach) {
      // Backlog evidence needs no sample minimum — a silent blackhole's
      // whole signature is completions that never arrive. When both
      // causes fired in the same window the label says so; a backlog-only
      // quarantine is never mislabeled "slo_breach".
      in.has_signal = true;
      pc.last_breach_reason = slo_breach && backlog_breach
                                  ? "slo+backlog_breach"
                                  : slo_breach ? "slo_breach"
                                               : "backlog_breach";
      pc.last_dominant_stage = dominant_stage;
      pc.last_dominant_ns = dominant_ns;
    } else if (in.has_signal) {
      // First clean window ends the breach episode: refresh the deferral
      // budget for the next one.
      pc.service_defers_used = 0;
    }

    switch (before) {
      case PathState::kActive:
        // Stage-aware actuation: a service-dominated SLO breach means the
        // path's core is slow, not its queue deep — masking just moves
        // the load while the hedger can rescue the stragglers. Defer the
        // quarantine for a bounded budget of ticks (counted) and let the
        // hedge act; backlog evidence always counts immediately.
        if (in.breach && slo_breach && !backlog_breach &&
            cfg_.service_defer_ticks > 0 && w.has_stage_evidence() &&
            w.dominant_stage() == trace::Stage::kService &&
            pc.service_defers_used < cfg_.service_defer_ticks) {
          in.breach = false;
          ++pc.service_defers_used;
          ++service_deferrals_;
        }
        // Capacity guard: losing this path would leave fewer than
        // min_serving_paths serving (forecast pre-quarantined paths are
        // already not serving). A contained tail beats a masked fleet;
        // the breach is suppressed (and counted), not queued.
        if (in.breach && serving_count() <= cfg_.min_serving_paths) {
          in.breach = false;
          ++suppressed_quarantines_;
        }
        break;
      case PathState::kDraining:
        act_.flush_path(p);
        in.drained = act_.path_backlog(p) == 0;
        break;
      case PathState::kReinstated:
        // Every probation observation is a verdict: in-SLO counts toward
        // graduation, out-of-SLO re-quarantines (handled by the FSM).
        in.clean_probes = w.samples - w.violations;
        in.violated_probes = w.violations;
        break;
      case PathState::kQuarantined:
        break;
    }

    const bool changed = pc.fsm.on_tick(in);
    const PathState after = pc.fsm.state();

    // Reactive takeover: once the FSM moves, its transition actuation owns
    // the path's admission — the forecast hold dissolves without touching
    // anything.
    if (changed && pc.pre_quarantined) pc.pre_quarantined = false;

    if (changed) {
      const char* reason = "";
      switch (after) {
        case PathState::kQuarantined:
          reason = before == PathState::kReinstated ? "probe_breach"
                                                    : pc.last_breach_reason;
          act_.set_admission(p, Admission::kDisabled);
          break;
        case PathState::kDraining:
          reason = "drain_start";
          act_.flush_path(p);
          break;
        case PathState::kReinstated:
          reason = "drained";
          act_.set_admission(p, Admission::kProbeOnly);
          break;
        case PathState::kActive:
          reason = "probation_passed";
          act_.set_admission(p, Admission::kEnabled);
          break;
      }
      Decision d;
      d.tick = tick_;
      d.now_ns = now_ns;
      d.path = static_cast<std::uint16_t>(p);
      d.from = before;
      d.to = after;
      d.reason = reason;
      d.p99_ns = w.p99_ns;
      d.samples = w.samples;
      d.violations = w.violations;
      d.backlog = backlog;
      d.replicas = hedger_.replicas();
      // A quarantine's stage verdict is the breaching window's — which may
      // be a tick or two old by the time the FSM trips (hysteresis); the
      // transition window itself can even be empty (masked tick).
      if (after == PathState::kQuarantined) {
        d.dominant_stage = pc.last_dominant_stage;
        d.dominant_stage_ns = pc.last_dominant_ns;
      } else {
        d.dominant_stage = dominant_stage;
        d.dominant_stage_ns = dominant_ns;
      }
      d.hedge_timeout_ns = hedge_timeout_.timeout_ns();
      log_decision(d);
    }

    if (pc.fsm.state() == PathState::kReinstated)
      act_.grant_probes(p, cfg_.probe_grant_per_tick);

    if (pc.fsm.state() == PathState::kActive && !pc.pre_quarantined) {
      if (w.p99_ns > worst_serving_p99) {
        worst_serving_p99 = w.p99_ns;
        worst_serving_p50 = w.p50_ns;
        worst_dominant_stage = dominant_stage;
        worst_dominant_ns = dominant_ns;
      }
      serving_samples += w.samples;
      if (est_ && fc.actionable &&
          (!have_fc_worst || fc.p999_ns > fc_worst.p999_ns)) {
        fc_worst = fc;
        fc_worst_path = static_cast<std::uint16_t>(p);
        have_fc_worst = true;
      }
    }
  }

  // Forecast stage, step 4: the global pre-hedge, BEFORE the reactive
  // hedger reads the measured tail. Replication and the hedge deadline
  // are plane-wide levers, so this is driven by the worst actionable
  // forecast across serving paths: raise replication one step inside the
  // budget and bias the PID deadline toward the floor, so the copies are
  // already flowing when the predicted tail lands.
  if (est_) {
    const double slo = static_cast<double>(cfg_.slo_target_ns);
    const double fc999 =
        have_fc_worst ? static_cast<double>(fc_worst.p999_ns) : 0.0;
    if (prehedge_active_) {
      const bool calmed =
          !have_fc_worst || fc999 < cfg_.forecast.restore_threshold * slo;
      // Past max_hold the episode releases unless the forecast still
      // clears the activation bar — a prediction that stays hot keeps the
      // pre-hedge armed until reactive evidence resolves it.
      const bool stale =
          tick_ - prehedge_since_ >= cfg_.forecast.max_hold_ticks &&
          fc999 < cfg_.forecast.prehedge_threshold * slo;
      if (calmed || stale) {
        prehedge_active_ = false;
        ++forecast_restores_;
        Decision d;
        d.tick = tick_;
        d.now_ns = now_ns;
        d.path = Decision::kHedge;
        d.reason = "forecast_restore";
        d.p99_ns = worst_serving_p99;
        d.samples = serving_samples;
        d.replicas = hedger_.replicas();
        d.hedge_timeout_ns = hedge_timeout_.timeout_ns();
        if (have_fc_worst) {
          d.fc_p99_ns = fc_worst.p99_ns;
          d.fc_p999_ns = fc_worst.p999_ns;
          d.fc_confidence = fc_worst.confidence;
          d.fc_horizon_ticks = fc_worst.horizon_ticks;
        }
        d.forecast_logged = true;
        log_decision(d);
      }
    } else if (have_fc_worst &&
               fc999 >= cfg_.forecast.prehedge_threshold * slo) {
      prehedge_active_ = true;
      prehedge_since_ = tick_;
      ++forecast_prehedges_;
      const std::size_t r_before = hedger_.replicas();
      const std::size_t r_after = hedger_.pre_raise();
      if (r_after != r_before) act_.set_replicas(r_after);
      hedge_timeout_.pre_tighten(cfg_.forecast.pretighten_frac);
      open_fp_episode(fc_worst_path);
      Decision d;
      d.tick = tick_;
      d.now_ns = now_ns;
      d.path = fc_worst_path;
      d.from = paths_[fc_worst_path].fsm.state();
      d.to = paths_[fc_worst_path].fsm.state();
      d.reason = "forecast_prehedge";
      d.p99_ns = worst_serving_p99;
      d.samples = serving_samples;
      d.replicas = r_after;
      if (fc_worst.has_stage && fc_worst.dominant_stage_slope > 0.0)
        d.dominant_stage = trace::stage_name(fc_worst.dominant_stage);
      d.hedge_timeout_ns = hedge_timeout_.timeout_ns();
      d.fc_p99_ns = fc_worst.p99_ns;
      d.fc_p999_ns = fc_worst.p999_ns;
      d.fc_confidence = fc_worst.confidence;
      d.fc_horizon_ticks = fc_worst.horizon_ticks;
      d.forecast_logged = true;
      log_decision(d);
    }
  }

  const std::size_t before_r = hedger_.replicas();
  const std::size_t after_r =
      hedger_.update(worst_serving_p99, serving_samples, cfg_.slo_target_ns);
  if (after_r != before_r) {
    act_.set_replicas(after_r);
    Decision d;
    d.tick = tick_;
    d.now_ns = now_ns;
    d.path = Decision::kHedge;
    d.reason = after_r > before_r ? "hedge_raise" : "hedge_lower";
    d.p99_ns = worst_serving_p99;
    d.samples = serving_samples;
    d.replicas = after_r;
    d.dominant_stage = worst_dominant_stage;
    d.dominant_stage_ns = worst_dominant_ns;
    d.hedge_timeout_ns = hedge_timeout_.timeout_ns();
    log_decision(d);
  }

  // The fine lever: move the hedge-fire deadline from measured p50-vs-SLO
  // headroom on the worst serving path. Actuated (and logged) only when
  // the PID output survives the deadband.
  const std::uint64_t t_before = hedge_timeout_.timeout_ns();
  const std::uint64_t t_after =
      hedge_timeout_.update(worst_serving_p50, worst_serving_p99,
                            serving_samples, cfg_.slo_target_ns);
  if (t_after != t_before && t_after != 0) {
    act_.set_hedge_timeout(t_after);
    Decision d;
    d.tick = tick_;
    d.now_ns = now_ns;
    d.path = Decision::kHedge;
    d.reason = "hedge_timeout";
    d.p99_ns = worst_serving_p99;
    d.samples = serving_samples;
    d.replicas = hedger_.replicas();
    d.dominant_stage = worst_dominant_stage;
    d.dominant_stage_ns = worst_dominant_ns;
    d.hedge_timeout_ns = t_after;
    log_decision(d);
  }

  // The third lever: WHAT gets duplicated. Escalates toward flow
  // replicas when the sustained pain is service-dominant (RepNet: clone
  // the short flow away from the stolen core), toward packet hedging
  // when it is queueing, and steps back to baseline once the tail calms.
  if (cfg_.granularity.enabled) {
    if (!gran_actuated_) {
      act_.set_granularity(gran_.granularity());
      gran_actuated_ = true;
    }
    const core::Granularity g_before = gran_.granularity();
    const core::Granularity g_after =
        gran_.update(worst_serving_p99, serving_samples, cfg_.slo_target_ns,
                     worst_dominant_stage);
    if (g_after != g_before) {
      act_.set_granularity(g_after);
      Decision d;
      d.tick = tick_;
      d.now_ns = now_ns;
      d.path = Decision::kGranularity;
      d.reason = "granularity_shift";
      d.gran_from = g_before;
      d.gran_to = g_after;
      d.p99_ns = worst_serving_p99;
      d.samples = serving_samples;
      d.replicas = hedger_.replicas();
      d.dominant_stage = worst_dominant_stage;
      d.dominant_stage_ns = worst_dominant_ns;
      d.hedge_timeout_ns = hedge_timeout_.timeout_ns();
      log_decision(d);
    }
  }

  // Tenant admission stage: harvest each tenant's window, advance its
  // state machine, and mirror transitions into the plane. The judgment is
  // the ARRIVAL contract, not the tenant's latency — under a storm every
  // tenant's tail degrades, so latency evidence points at victims while
  // the arrival budget points at the perpetrator (docs/TENANCY.md).
  if (tenants_) {
    for (std::size_t t = 0; t < tenants_->num_tenants(); ++t) {
      const TenantAdmission::TickResult r = tenants_->tick_tenant(t);
      if (exporter_) {
        telem::TenantTickStats ts;
        ts.tenant = static_cast<std::uint16_t>(t);
        ts.state = tenant_state_name(r.after);
        ts.arrivals = r.arrivals;
        ts.admitted = r.admitted;
        ts.dropped = r.dropped;
        ts.flow_arrivals = r.flow_arrivals;
        ts.samples = r.slo.samples;
        ts.violations = r.slo.violations;
        ts.p50_ns = r.slo.p50_ns;
        ts.p99_ns = r.slo.p99_ns;
        ts.p999_ns = r.slo.p999_ns;
        ts.max_ns = r.slo.max_ns;
        exporter_->add_tenant(ts);
      }
      if (!r.changed) continue;
      act_.set_tenant_admission(static_cast<std::uint16_t>(t), r.after);
      Decision d;
      d.tick = tick_;
      d.now_ns = now_ns;
      d.path = Decision::kTenant;
      d.tenant = static_cast<std::uint16_t>(t);
      d.tenant_from = r.before;
      d.tenant_to = r.after;
      d.reason = r.reason;
      d.arrivals = r.arrivals;
      d.p99_ns = r.slo.p99_ns;
      d.samples = r.slo.samples;
      d.violations = r.slo.violations;
      d.replicas = hedger_.replicas();
      d.hedge_timeout_ns = hedge_timeout_.timeout_ns();
      log_decision(d);
    }
  }

  if (exporter_) exporter_->end_tick();
}

std::uint64_t Controller::quarantines() const noexcept {
  std::uint64_t n = 0;
  for (const auto& p : paths_) n += p.fsm.quarantines();
  return n;
}

std::uint64_t Controller::reinstatements() const noexcept {
  std::uint64_t n = 0;
  for (const auto& p : paths_) n += p.fsm.reinstatements();
  return n;
}

std::string Controller::report_json() const {
  trace::JsonWriter w;
  w.begin_object();
  w.key("slo_target_ns").value(cfg_.slo_target_ns);
  w.key("violation_threshold").value(cfg_.violation_threshold);
  w.key("backlog_limit").value(cfg_.backlog_limit);
  w.key("quarantine_after").value(cfg_.path.quarantine_after);
  w.key("probation_probes").value(cfg_.path.probation_probes);
  w.key("ticks").value(tick_);
  w.key("quarantines").value(quarantines());
  w.key("reinstatements").value(reinstatements());
  w.key("suppressed_quarantines").value(suppressed_quarantines_);
  w.key("hedge_raises").value(hedger_.raises());
  w.key("hedge_lowers").value(hedger_.lowers());
  w.key("replicas").value(static_cast<std::uint64_t>(hedger_.replicas()));
  w.key("hedge_timeout_ns").value(hedge_timeout_.timeout_ns());
  w.key("hedge_timeout_adjustments").value(hedge_timeout_.adjustments());
  w.key("service_deferrals").value(service_deferrals_);
  if (cfg_.forecast.enabled) {
    w.key("forecast_enabled").value(true);
    w.key("forecast_prehedges").value(forecast_prehedges_);
    w.key("forecast_probes").value(forecast_probes_);
    w.key("forecast_prequarantines").value(forecast_prequarantines_);
    w.key("forecast_restores").value(forecast_restores_);
    w.key("forecast_confirmed").value(forecast_confirmed_);
    w.key("forecast_false_positives").value(forecast_false_positives_);
    w.key("forecast_false_positive_fraction")
        .value(forecast_false_positive_fraction());
    w.key("breach_windows").value(breach_windows_);
  }
  if (cfg_.granularity.enabled) {
    w.key("granularity").value(core::granularity_name(gran_.granularity()));
    w.key("granularity_shifts").value(gran_.shifts());
  }
  w.key("path_states").begin_array();
  for (const auto& p : paths_) w.value(path_state_name(p.fsm.state()));
  w.end_array();
  if (tenants_) {
    w.key("tenant_throttles").value(tenants_->throttles());
    w.key("tenant_sheds").value(tenants_->sheds());
    w.key("tenant_reinstates").value(tenants_->reinstates());
    w.key("tenant_dropped").value(tenants_->total_dropped());
    w.key("tenants").begin_array();
    for (std::size_t t = 0; t < tenants_->num_tenants(); ++t) {
      const TenantSpec& spec = tenants_->spec(t);
      w.begin_object();
      w.key("tenant").value(static_cast<std::uint64_t>(t));
      w.key("name").value(spec.name);
      w.key("state").value(tenant_state_name(
          tenants_->state(static_cast<std::uint16_t>(t))));
      w.key("slo_target_ns").value(tenants_->monitor().slot_target_ns(t));
      w.key("arrival_budget_per_tick").value(spec.arrival_budget_per_tick);
      w.key("hedge_budget_per_tick").value(spec.hedge_budget_per_tick);
      w.key("dropped").value(tenants_->dropped(t));
      w.end_object();
    }
    w.end_array();
  }
  w.key("decisions_evicted").value(decisions_evicted_);
  w.key("decisions").begin_array();
  for (const auto& d : decisions_) {
    w.begin_object();
    w.key("tick").value(d.tick);
    w.key("now_ns").value(d.now_ns);
    if (d.path == Decision::kHedge) {
      w.key("target").value("hedger");
    } else if (d.path == Decision::kGranularity) {
      w.key("target").value("granularity");
      w.key("from").value(core::granularity_name(d.gran_from));
      w.key("to").value(core::granularity_name(d.gran_to));
      w.key("granularity").value(core::granularity_name(d.gran_to));
    } else if (d.path == Decision::kTenant) {
      w.key("target").value("tenant");
      w.key("tenant").value(static_cast<std::uint64_t>(d.tenant));
      w.key("from").value(tenant_state_name(d.tenant_from));
      w.key("to").value(tenant_state_name(d.tenant_to));
      w.key("arrivals").value(d.arrivals);
    } else {
      w.key("path").value(static_cast<std::uint64_t>(d.path));
      w.key("from").value(path_state_name(d.from));
      w.key("to").value(path_state_name(d.to));
    }
    w.key("reason").value(d.reason);
    w.key("p99_ns").value(d.p99_ns);
    w.key("samples").value(d.samples);
    w.key("violations").value(d.violations);
    w.key("backlog").value(d.backlog);
    w.key("replicas").value(static_cast<std::uint64_t>(d.replicas));
    if (d.dominant_stage[0] != '\0') {
      w.key("dominant_stage").value(d.dominant_stage);
      w.key("dominant_stage_ns").value(d.dominant_stage_ns);
    }
    if (d.hedge_timeout_ns != 0)
      w.key("hedge_timeout_ns").value(d.hedge_timeout_ns);
    if (d.granularity_logged && d.path != Decision::kGranularity)
      w.key("granularity").value(core::granularity_name(d.granularity));
    if (d.forecast_logged) {
      w.key("forecast").begin_object();
      w.key("horizon_ticks").value(d.fc_horizon_ticks);
      w.key("p99_ns").value(d.fc_p99_ns);
      w.key("p999_ns").value(d.fc_p999_ns);
      w.key("confidence").value(d.fc_confidence);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

void Controller::register_stats(trace::StatsRegistry& reg) const {
  reg.add_counter("ctrl.ticks", [this] { return tick_; });
  reg.add_counter("ctrl.quarantines", [this] { return quarantines(); });
  reg.add_counter("ctrl.reinstatements",
                  [this] { return reinstatements(); });
  reg.add_counter("ctrl.suppressed_quarantines",
                  [this] { return suppressed_quarantines_; });
  reg.add_counter("ctrl.hedge_raises", [this] { return hedger_.raises(); });
  reg.add_counter("ctrl.hedge_lowers", [this] { return hedger_.lowers(); });
  reg.add_counter("ctrl.hedge_timeout_changes",
                  [this] { return hedge_timeout_.adjustments(); });
  reg.add_counter("ctrl.service_deferrals",
                  [this] { return service_deferrals_; });
  if (cfg_.forecast.enabled) {
    reg.add_counter("ctrl.forecast_prehedges",
                    [this] { return forecast_prehedges_; });
    reg.add_counter("ctrl.forecast_probes",
                    [this] { return forecast_probes_; });
    reg.add_counter("ctrl.forecast_prequarantines",
                    [this] { return forecast_prequarantines_; });
    reg.add_counter("ctrl.forecast_restores",
                    [this] { return forecast_restores_; });
    reg.add_counter("ctrl.forecast_confirmed",
                    [this] { return forecast_confirmed_; });
    reg.add_counter("ctrl.forecast_false_positives",
                    [this] { return forecast_false_positives_; });
    reg.add_counter("ctrl.breach_windows",
                    [this] { return breach_windows_; });
  }
  reg.add_counter("ctrl.granularity_shifts",
                  [this] { return gran_.shifts(); });
  reg.add_gauge("ctrl.granularity", [this] {
    return static_cast<double>(
        static_cast<std::uint8_t>(gran_.granularity()));
  });
  reg.add_gauge("ctrl.hedge_timeout_ns", [this] {
    return static_cast<double>(hedge_timeout_.timeout_ns());
  });
  reg.add_gauge("ctrl.replicas", [this] {
    return static_cast<double>(hedger_.replicas());
  });
  reg.add_gauge("ctrl.paths_active", [this] {
    return static_cast<double>(active_count());
  });
  reg.add_counter("ctrl.tenant_throttles",
                  [this] { return tenant_throttles(); });
  reg.add_counter("ctrl.tenant_sheds", [this] { return tenant_sheds(); });
  reg.add_counter("ctrl.tenant_reinstates",
                  [this] { return tenant_reinstates(); });
  reg.add_counter("ctrl.tenant_dropped",
                  [this] { return tenant_dropped(); });
  reg.add_gauge("ctrl.tenants_shed", [this] {
    return tenants_ ? static_cast<double>(tenants_->shed_count()) : 0.0;
  });
}

}  // namespace mdp::ctrl
