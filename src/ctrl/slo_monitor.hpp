// SloMonitor: the control plane's observation stage — per-path latency
// windows the Controller harvests once per tick.
//
// Design constraints, in order:
//   1. observe() must be callable from ANY thread (the threaded plane's
//      collector calls it from its Completion callback while the caller
//      thread ticks the controller), so ingestion is lock-free: per-path
//      arrays of relaxed atomic counters plus a log2 sub-bucketed window
//      histogram. No shared non-atomic state, no locks — TSan-clean by
//      construction.
//   2. harvest() drains a path's window (exchange-to-zero per bucket) and
//      returns the interval summary: sample count, SLO violations, p99
//      derived from the bucket CDF. The window between two ticks IS the
//      controller's evidence; nothing accumulates across ticks except the
//      lifetime counters exposed via register_stats().
//   3. Units are caller-defined. The simulated plane feeds virtual
//      nanoseconds; the loopback test rig feeds wire-tick lag scaled to a
//      pseudo-ns unit. The monitor only compares against slo_target_ns in
//      the same unit, which is what keeps the end-to-end controller test
//      deterministic (no wall-clock in the loop).
//
// Bucketing: value -> (exponent, 2 sub-bits) like stats::LatencyHistogram
// but with atomic slots and a fixed footprint (kBuckets * 8 bytes per
// path). p99 resolution is ~25% of the value, plenty to decide "tail is
// 8x the SLO" vs "tail is fine".
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "stats/cacheline.hpp"
#include "trace/registry.hpp"
#include "trace/span.hpp"

namespace mdp::ctrl {

// Window-bucket geometry, at namespace level so WindowStats can carry the
// harvested counts and interpolate quantiles without reaching back into
// the monitor (the forecast estimator consumes WindowStats by value).
inline constexpr std::size_t kSloSubBits = 2;  // 4 sub-buckets per octave
inline constexpr std::size_t kSloBuckets = 64 << kSloSubBits;

/// Same shape as stats::LatencyHistogram: values below 2^kSloSubBits map
/// linearly, everything else by (octave, top kSloSubBits mantissa bits).
constexpr std::size_t slo_bucket_index(std::uint64_t v) noexcept {
  if (v < (1u << kSloSubBits)) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const std::size_t sub =
      static_cast<std::size_t>(v >> (msb - static_cast<int>(kSloSubBits))) &
      ((1u << kSloSubBits) - 1);
  const std::size_t idx = (static_cast<std::size_t>(msb) << kSloSubBits) + sub;
  return idx < kSloBuckets ? idx : kSloBuckets - 1;
}

/// Upper edge of bucket `idx`: (1 + (sub+1)/4) * 2^msb - 1, saturating to
/// UINT64_MAX once the octave would overflow.
constexpr std::uint64_t slo_bucket_upper_edge(std::size_t idx) noexcept {
  if (idx < (1u << kSloSubBits)) return idx;
  const std::size_t msb = idx >> kSloSubBits;
  const std::size_t sub = idx & ((1u << kSloSubBits) - 1);
  if (msb >= 62) return UINT64_MAX;
  const std::uint64_t base = 1ull << msb;
  return base + ((base >> kSloSubBits) * (sub + 1)) - 1;
}

/// Smallest value that lands in bucket `idx`.
constexpr std::uint64_t slo_bucket_lower_edge(std::size_t idx) noexcept {
  return idx ? slo_bucket_upper_edge(idx - 1) + 1 : 0;
}

/// One harvested observation window for one path.
struct WindowStats {
  std::uint64_t samples = 0;
  std::uint64_t violations = 0;  ///< observations above the SLO target
  std::uint64_t sum_ns = 0;
  std::uint64_t p50_ns = 0;      ///< bucket-quantized window median
  std::uint64_t p99_ns = 0;      ///< bucket-quantized window p99
  std::uint64_t p999_ns = 0;     ///< bucket-quantized window p99.9
  std::uint64_t max_ns = 0;      ///< upper edge of the top non-empty bucket
  /// Per-stage latency mass observed this window (observe_span feeders
  /// only; all-zero when the plane feeds plain scalar latencies). Indexed
  /// by trace::stage_at(i).
  std::array<std::uint64_t, trace::kNumStages> stage_sum_ns{};
  /// The drained window histogram itself (slo_bucket_index geometry), so
  /// consumers can derive quantiles the summary fields don't carry.
  std::array<std::uint64_t, kSloBuckets> bucket_counts{};

  /// Bucket-interpolated quantile, q in [0, 1]. Unlike the quantized
  /// p50/p99/p999 fields (upper edge of the crossing bucket — kept
  /// byte-identical for every existing consumer), this interpolates the
  /// rank's position linearly WITHIN the crossing bucket, which is what a
  /// differentiating consumer (the forecast trend term) needs: a staircase
  /// input turns a smooth ramp into slope noise. Pinned edge behavior:
  /// empty window -> 0; the rank's position within a bucket of count c is
  /// (rank - seen)/c of the span, so a single-sample window returns the
  /// bucket's upper edge; a saturated top octave (upper edge UINT64_MAX)
  /// returns UINT64_MAX rather than pretending sub-bucket resolution.
  std::uint64_t quantile_ns(double q) const noexcept {
    if (samples == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double exact = q * static_cast<double>(samples);
    std::uint64_t rank = static_cast<std::uint64_t>(exact);
    if (static_cast<double>(rank) < exact) ++rank;  // ceil
    if (rank == 0) rank = 1;
    if (rank > samples) rank = samples;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kSloBuckets; ++i) {
      const std::uint64_t c = bucket_counts[i];
      if (!c) continue;
      if (seen + c >= rank) {
        const std::uint64_t upper = slo_bucket_upper_edge(i);
        if (upper == UINT64_MAX) return upper;
        const std::uint64_t lower = slo_bucket_lower_edge(i);
        const double frac = static_cast<double>(rank - seen) /
                            static_cast<double>(c);
        return lower + static_cast<std::uint64_t>(
                           static_cast<double>(upper - lower) * frac);
      }
      seen += c;
    }
    return max_ns;  // unreachable with consistent counts
  }

  double violation_fraction() const noexcept {
    return samples ? static_cast<double>(violations) /
                         static_cast<double>(samples)
                   : 0.0;
  }

  /// True when this window carries stage-attributed evidence.
  bool has_stage_evidence() const noexcept {
    for (std::uint64_t s : stage_sum_ns)
      if (s) return true;
    return false;
  }

  /// The stage carrying the most latency mass this window (ties break to
  /// the earliest pipeline stage). Only meaningful with stage evidence.
  trace::Stage dominant_stage() const noexcept {
    std::size_t best = 0;
    for (std::size_t i = 1; i < trace::kNumStages; ++i)
      if (stage_sum_ns[i] > stage_sum_ns[best]) best = i;
    return trace::stage_at(best);
  }

  std::uint64_t dominant_stage_ns() const noexcept {
    return stage_sum_ns[static_cast<std::size_t>(dominant_stage())];
  }

  /// Fraction of the window's total stage mass in the dominant stage.
  double dominant_share() const noexcept {
    std::uint64_t total = 0;
    for (std::uint64_t s : stage_sum_ns) total += s;
    return total ? static_cast<double>(dominant_stage_ns()) /
                       static_cast<double>(total)
                 : 0.0;
  }
};

class SloMonitor {
 public:
  static constexpr std::size_t kSubBits = kSloSubBits;
  static constexpr std::size_t kBuckets = kSloBuckets;

  SloMonitor(std::size_t num_paths, std::uint64_t slo_target_ns);

  /// Record one completed-packet latency on `path`. Thread-safe, lock-free,
  /// relaxed atomics only; safe to call concurrently with harvest().
  void observe(std::uint16_t path, std::uint64_t latency_ns) noexcept;

  /// Record one completed packet WITH stage attribution: the span's e2e
  /// latency lands in the scalar window (exactly like observe()) and each
  /// stage's duration is added to the path's per-stage sums, so harvest()
  /// can say not just THAT the window breached but WHERE the time went
  /// (queue wait vs service vs reorder). Same thread-safety contract as
  /// observe(): relaxed atomics only, safe against a concurrent harvest().
  void observe_span(std::uint16_t path,
                    const trace::SpanRecord& span) noexcept;

  /// Drain `path`'s window and return its summary. Controller thread only
  /// (one harvester); concurrent observe() calls land in this window or
  /// the next, never lost.
  WindowStats harvest(std::size_t path) noexcept;

  std::uint64_t slo_target_ns() const noexcept { return slo_target_ns_; }
  /// Runtime-adjustable knob: applies to observations from now on.
  void set_slo_target_ns(std::uint64_t t) noexcept {
    slo_target_ns_.store(t, std::memory_order_relaxed);
  }

  /// Per-slot SLO target override (0 = use the global target). This is
  /// how one monitor carries heterogeneous objectives — per-tenant SLO
  /// classes share one monitor with one slot per tenant
  /// (docs/TENANCY.md). Relaxed atomic; applies from the next observation.
  void set_slot_target_ns(std::size_t slot, std::uint64_t t) noexcept {
    if (slot < paths_.size())
      paths_[slot]->slot_target.store(t, std::memory_order_relaxed);
  }
  std::uint64_t slot_target_ns(std::size_t slot) const noexcept {
    if (slot >= paths_.size()) return 0;
    const std::uint64_t t =
        paths_[slot]->slot_target.load(std::memory_order_relaxed);
    return t ? t : slo_target_ns_.load(std::memory_order_relaxed);
  }

  std::size_t num_paths() const noexcept { return paths_.size(); }

  // Lifetime totals (monotonic, across all harvested windows).
  std::uint64_t total_observed() const noexcept;
  std::uint64_t total_violations() const noexcept;

  /// Expose lifetime totals as `slo.*`. The monitor must outlive any
  /// snapshot taken from `reg`.
  void register_stats(trace::StatsRegistry& reg) const;

 private:
  // Hot-write layout (stats::kCacheLineSize =
  // std::hardware_destructive_interference_size): the scalar window
  // accumulators the observer thread hits on EVERY observation (sum /
  // violations), the per-stage sums (every observe_span), and the
  // lifetime counters each get their own interference line, so the
  // harvester's exchange-to-zero on one group never steals the line the
  // observer is pounding in another — and adjacent heap-allocated
  // PathWindows can't share a boundary line either. tab4's
  // padded-vs-packed rows quantify what this buys.
  struct alignas(stats::kCacheLineSize) PathWindow {
    std::atomic<std::uint64_t> buckets[kBuckets];
    alignas(stats::kCacheLineSize) std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> violations{0};
    alignas(stats::kCacheLineSize)
        std::atomic<std::uint64_t> stage_sum[trace::kNumStages];
    alignas(stats::kCacheLineSize)
        std::atomic<std::uint64_t> lifetime_samples{0};
    std::atomic<std::uint64_t> lifetime_violations{0};
    /// Per-slot SLO override; 0 = inherit the monitor-wide target.
    std::atomic<std::uint64_t> slot_target{0};
  };

  std::atomic<std::uint64_t> slo_target_ns_;
  std::vector<std::unique_ptr<PathWindow>> paths_;
};

}  // namespace mdp::ctrl
