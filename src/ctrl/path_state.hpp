// PathStateMachine: the per-path decision kernel of the control plane.
//
//   ACTIVE ──(quarantine_after consecutive breaching ticks)──> QUARANTINED
//   QUARANTINED ──(next tick; stop feeding the path)──────────> DRAINING
//   DRAINING ──(backlog hits zero)─────────────────────────────> REINSTATED
//   REINSTATED ──(probation_probes clean probe observations)──> ACTIVE
//   REINSTATED ──(any breach while on probation)──────────────> QUARANTINED
//
// Hysteresis lives here: a single breaching window can never quarantine a
// path (quarantine_after >= 2 by validation), and a reinstated path must
// prove itself over a whole probation window before it takes real traffic
// again — so a path cannot flap on alternating good/bad samples. The
// machine is pure (no clocks, no actuators): the Controller feeds it one
// TickInput per tick and actuates on the transitions it reports.
#pragma once

#include <cstdint>

namespace mdp::ctrl {

enum class PathState : std::uint8_t {
  kActive = 0,       ///< serving traffic, SLO window watched
  kQuarantined,      ///< breach confirmed; masked from the candidate set
  kDraining,         ///< masked; waiting for in-flight work to reach zero
  kReinstated,       ///< probe-only probation before rejoining ACTIVE
};

const char* path_state_name(PathState s) noexcept;

struct PathStateConfig {
  /// Consecutive breaching ticks before ACTIVE -> QUARANTINED. Clamped to
  /// >= 2: one window is a spike, not a trend.
  int quarantine_after = 2;
  /// Clean probe observations required to graduate probation.
  std::uint64_t probation_probes = 16;
};

/// Everything the controller learned about one path this tick.
struct TickInput {
  bool breach = false;       ///< SLO window breached (needs has_signal)
  bool has_signal = false;   ///< window had enough samples to judge
  bool drained = false;      ///< no queued or in-flight work on the path
  std::uint64_t clean_probes = 0;     ///< this tick's in-SLO observations
  std::uint64_t violated_probes = 0;  ///< this tick's out-of-SLO ones
};

class PathStateMachine {
 public:
  explicit PathStateMachine(PathStateConfig cfg = {});

  /// Advance one tick. Returns true when the state changed.
  bool on_tick(const TickInput& in);

  PathState state() const noexcept { return state_; }
  int breach_streak() const noexcept { return breach_streak_; }
  std::uint64_t probation_progress() const noexcept { return probation_; }

  std::uint64_t quarantines() const noexcept { return quarantines_; }
  std::uint64_t reinstatements() const noexcept { return reinstatements_; }

 private:
  PathStateConfig cfg_;
  PathState state_ = PathState::kActive;
  int breach_streak_ = 0;
  std::uint64_t probation_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t reinstatements_ = 0;
};

}  // namespace mdp::ctrl
