// MpmcRing: bounded multi-producer/multi-consumer lock-free queue using
// per-slot sequence numbers (Vyukov's bounded MPMC algorithm — the same
// family DPDK's rte_ring MP/MC mode belongs to).
//
// Used where several scheduler threads feed one path, or one ingress feeds
// several worker cores, in the real-thread data plane.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>

#include "ring/spsc_ring.hpp"  // for kCacheLine

namespace mdp::ring {

template <typename T>
class MpmcRing {
 public:
  explicit MpmcRing(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(std::make_unique<Slot[]>(mask_ + 1)) {
    for (std::size_t i = 0; i <= mask_; ++i)
      slots_[i].sequence.store(i, std::memory_order_relaxed);
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Approximate occupancy.
  std::size_t size() const noexcept {
    std::uint64_t h = enqueue_pos_.load(std::memory_order_acquire);
    std::uint64_t t = dequeue_pos_.load(std::memory_order_acquire);
    return h > t ? static_cast<std::size_t>(h - t) : 0;
  }

  bool try_push(T item) noexcept {
    Slot* slot;
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      std::uint64_t seq = slot->sequence.load(std::memory_order_acquire);
      std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                           static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    slot->value = std::move(item);
    slot->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool try_pop(T& out) noexcept {
    Slot* slot;
    std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      std::uint64_t seq = slot->sequence.load(std::memory_order_acquire);
      std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                           static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(slot->value);
    slot->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Bulk enqueue of up to `items.size()` items (DPDK rte_ring MP "burst"
  /// semantics): one CAS claims min(free, n) consecutive positions, then
  /// each claimed slot is filled. Returns the number enqueued. A claimed
  /// slot whose previous-cycle consumer is still mid-copy is waited on
  /// briefly — the same progress guarantee as rte_ring's MP mode, bounded
  /// by one in-flight pop per slot.
  std::size_t try_push_burst(std::span<T> items) noexcept {
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    std::size_t n;
    for (;;) {
      const std::uint64_t tail = dequeue_pos_.load(std::memory_order_acquire);
      const std::size_t free =
          capacity() - static_cast<std::size_t>(pos - tail);
      n = items.size() < free ? items.size() : free;
      if (n == 0) return 0;
      if (enqueue_pos_.compare_exchange_weak(pos, pos + n,
                                             std::memory_order_relaxed))
        break;
    }
    for (std::size_t i = 0; i < n; ++i) {
      Slot& slot = slots_[(pos + i) & mask_];
      while (slot.sequence.load(std::memory_order_acquire) != pos + i)
        std::this_thread::yield();
      slot.value = std::move(items[i]);
      slot.sequence.store(pos + i + 1, std::memory_order_release);
    }
    return n;
  }

  /// Bulk dequeue of up to `out.size()` items (MC "burst" semantics): one
  /// CAS claims min(available, n) consecutive positions, then each claimed
  /// slot is drained. Returns the number dequeued. Mirrors try_push_burst's
  /// bounded wait for a producer mid-copy on a claimed slot.
  std::size_t try_pop_burst(std::span<T> out) noexcept {
    std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    std::size_t n;
    for (;;) {
      const std::uint64_t head = enqueue_pos_.load(std::memory_order_acquire);
      const std::size_t avail = static_cast<std::size_t>(head - pos);
      n = out.size() < avail ? out.size() : avail;
      if (n == 0) return 0;
      if (dequeue_pos_.compare_exchange_weak(pos, pos + n,
                                             std::memory_order_relaxed))
        break;
    }
    for (std::size_t i = 0; i < n; ++i) {
      Slot& slot = slots_[(pos + i) & mask_];
      while (slot.sequence.load(std::memory_order_acquire) != pos + i + 1)
        std::this_thread::yield();
      out[i] = std::move(slot.value);
      slot.sequence.store(pos + i + mask_ + 1, std::memory_order_release);
    }
    return n;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> sequence;
    T value;
  };

  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(kCacheLine) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> dequeue_pos_{0};
};

}  // namespace mdp::ring
