// SpscRing: bounded single-producer/single-consumer lock-free ring, the
// building block of the threaded data plane (one ring per path direction,
// exactly like a DPDK rte_ring in SP/SC mode).
//
// Capacity is rounded up to a power of two so index masking replaces modulo.
// Producer and consumer cursors live on separate cache lines to avoid false
// sharing; acquire/release ordering is the minimal correct protocol.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>

namespace mdp::ring {

#if defined(__cpp_lib_hardware_interference_size)
inline constexpr std::size_t kCacheLine =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

template <typename T>
class SpscRing {
 public:
  /// @param capacity minimum number of slots (rounded up to a power of two).
  explicit SpscRing(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(std::make_unique<T[]>(mask_ + 1)) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer-side: number of free slots (conservative).
  std::size_t free_slots() const noexcept {
    return capacity() - size();
  }

  /// Approximate occupancy (exact when called from either endpoint while
  /// the other is quiescent).
  std::size_t size() const noexcept {
    std::uint64_t h = head_.load(std::memory_order_acquire);
    std::uint64_t t = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(h - t);
  }

  bool empty() const noexcept { return size() == 0; }

  /// Enqueue one item. Returns false when full.
  bool try_push(T item) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;
    slots_[head & mask_] = std::move(item);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Bulk enqueue; enqueues either all of `items` or nothing (DPDK
  /// "fixed" semantics). Returns the number enqueued (0 or items.size()).
  std::size_t try_push_bulk(std::span<T> items) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (capacity() - (head - tail) < items.size()) return 0;
    for (std::size_t i = 0; i < items.size(); ++i)
      slots_[(head + i) & mask_] = std::move(items[i]);
    head_.store(head + items.size(), std::memory_order_release);
    return items.size();
  }

  /// Bulk enqueue of up to `items.size()` items (DPDK "burst" semantics:
  /// enqueue as many as fit, in order). Returns the number enqueued.
  /// Complements try_push_bulk's all-or-nothing contract; the threaded
  /// data plane's ingress uses this so a nearly-full path ring absorbs
  /// the front of a burst instead of rejecting it whole.
  std::size_t try_push_burst(std::span<T> items) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t free = capacity() - static_cast<std::size_t>(head - tail);
    const std::size_t n = free < items.size() ? free : items.size();
    for (std::size_t i = 0; i < n; ++i)
      slots_[(head + i) & mask_] = std::move(items[i]);
    if (n > 0) head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Dequeue one item. Returns false when empty.
  bool try_pop(T& out) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Bulk dequeue of up to `out.size()` items (DPDK "burst" semantics).
  /// Returns the number dequeued.
  std::size_t try_pop_burst(std::span<T> out) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::size_t avail = static_cast<std::size_t>(head - tail);
    std::size_t n = avail < out.size() ? avail : out.size();
    for (std::size_t i = 0; i < n; ++i)
      out[i] = std::move(slots_[(tail + i) & mask_]);
    if (n > 0) tail_.store(tail + n, std::memory_order_release);
    return n;
  }

 private:
  const std::size_t mask_;
  std::unique_ptr<T[]> slots_;
  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};  // producer cursor
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};  // consumer cursor
};

}  // namespace mdp::ring
