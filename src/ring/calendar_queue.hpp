// CalendarQueue: a timing-wheel of tick buckets for frames whose delivery
// time hasn't come — the staging structure behind LoopbackBackend's fault
// lanes, replacing a binary heap with O(1) push/pop and no per-entry heap
// churn.
//
// Entries carry an absolute due tick. A bucket holds every staged entry
// whose due maps to it (due & mask). Under the caller contract below each
// bucket is naturally sorted by (due, push order), so releasing in global
// (due, push order) is a head pop — no comparisons, no sifting.
//
// Caller contract (checked by construction, not at runtime): pushes happen
// at a nondecreasing wire clock `now` with due in [now, now + horizon], and
// the wheel is at least horizon + 1 wide (ensure_horizon). Two entries can
// then share a bucket with different dues only when they are a full wheel
// lap apart, and the later-lap entry is provably pushed later — so append
// order IS (due, push order) within every bucket.
//
// Single-threaded by design: it lives on the TX side of a backend, behind
// the same thread that owns the fault lanes.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mdp::ring {

template <typename T>
class CalendarQueue {
 public:
  explicit CalendarQueue(std::uint64_t horizon = 0) { rebuild(horizon); }

  /// Widest supported (due - now) offset for pushes.
  std::uint64_t horizon() const noexcept { return wheel_.size() - 1; }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Grow the wheel so offsets up to `horizon` are representable. Existing
  /// entries are re-bucketed; control path only (fault-lane installs).
  void ensure_horizon(std::uint64_t horizon) {
    if (horizon < wheel_.size()) return;
    std::vector<std::pair<std::uint64_t, T>> drained;
    drained.reserve(size_);
    std::uint64_t due = 0;
    while (T* e = peek_any(&due)) {
      drained.emplace_back(due, std::move(*e));
      pop_front();
    }
    rebuild(horizon);
    for (auto& [d, item] : drained) push(d, std::move(item));
  }

  /// Stage an entry for delivery at absolute tick `due`.
  void push(std::uint64_t due, T item) {
    Bucket& b = wheel_[due & mask_];
    b.entries.emplace_back(Entry{due, std::move(item)});
    if (size_ == 0) {
      scan_ = due;
      max_due_ = due;
    } else {
      if (due < scan_) scan_ = due;
      if (due > max_due_) max_due_ = due;
    }
    ++size_;
  }

  /// Earliest entry (global (due, push order)) with due <= limit, or
  /// nullptr. Amortized O(1): the scan cursor only ever moves forward
  /// across calls (except when an earlier due is pushed).
  T* peek(std::uint64_t limit) {
    if (size_ == 0) return nullptr;
    while (scan_ <= limit) {
      Bucket& b = wheel_[scan_ & mask_];
      if (b.head < b.entries.size() && b.entries[b.head].due == scan_)
        return &b.entries[b.head].item;
      if (scan_ == max_due_) break;  // nothing staged at or before limit
      ++scan_;  // proven empty at this due: advance permanently
    }
    return nullptr;
  }

  /// Earliest entry regardless of due (flush path). Writes its due to
  /// `*due_out` when found.
  T* peek_any(std::uint64_t* due_out) {
    if (size_ == 0) return nullptr;
    for (;; ++scan_) {
      Bucket& b = wheel_[scan_ & mask_];
      if (b.head < b.entries.size() && b.entries[b.head].due == scan_) {
        *due_out = scan_;
        return &b.entries[b.head].item;
      }
    }
  }

  /// Remove the entry the last successful peek/peek_any returned.
  void pop_front() {
    Bucket& b = wheel_[scan_ & mask_];
    ++b.head;
    if (b.head == b.entries.size()) {
      b.entries.clear();
      b.head = 0;
    }
    --size_;
  }

 private:
  struct Entry {
    std::uint64_t due;
    T item;
  };
  struct Bucket {
    std::vector<Entry> entries;
    std::size_t head = 0;
  };

  void rebuild(std::uint64_t horizon) {
    const std::uint64_t width = std::bit_ceil(horizon + 1);
    wheel_.assign(static_cast<std::size_t>(width), Bucket{});
    mask_ = width - 1;
    size_ = 0;
    scan_ = 0;
    max_due_ = 0;
  }

  std::vector<Bucket> wheel_;
  std::uint64_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint64_t scan_ = 0;     ///< lower bound on the minimum staged due
  std::uint64_t max_due_ = 0;  ///< highest due ever staged (scan backstop)
};

}  // namespace mdp::ring
