// ReorderBuffer: per-flow resequencer at the multipath egress.
//
// Multipath dispatch can deliver a flow's packets out of order (different
// paths drain at different speeds). The buffer holds early packets until
// their predecessors arrive, releasing in sequence; a timeout bounds the
// dwell when a predecessor was dropped in-chain, after which the window
// advances past the hole.
//
// When disabled it still *detects* out-of-order deliveries (Fig 10's
// "no reorder buffer" series) but emits immediately.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <unordered_map>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "sim/event_queue.hpp"
#include "stats/histogram.hpp"

namespace mdp::core {

struct ReorderConfig {
  bool enabled = true;
  sim::TimeNs timeout_ns = 200'000;  ///< max dwell waiting for a hole
};

class ReorderBuffer {
 public:
  using Emit = std::function<void(net::PacketPtr)>;

  ReorderBuffer(sim::EventQueue& eq, ReorderConfig cfg, Emit emit)
      : eq_(eq), cfg_(cfg), emit_(std::move(emit)) {}

  /// Hand over a deduplicated packet (anno.flow_id / anno.seq valid).
  void submit(net::PacketPtr pkt);

  /// Burst drain: submit each non-null packet in order (null entries —
  /// dedup-dropped burst slots — are skipped). Identical semantics to a
  /// per-packet submit loop.
  void submit_batch(std::span<net::PacketPtr> pkts);

  /// Path-down / teardown flush: release every buffered packet NOW, in
  /// per-flow seq order, advancing each flow's window past its holes
  /// (predecessors stranded on a dead path will never arrive, so waiting
  /// out the timeout only adds tail latency). Ownership moves through
  /// emit_ — the consumer's drop recycles each PacketPtr into its pool —
  /// and all dwell/arrival bookkeeping is cleared, so a pool-leak audit
  /// (PacketPool::in_use() == 0 at quiesce) passes without manual
  /// inspection. Returns the number of packets released.
  std::size_t flush_all();

  // --- stats --------------------------------------------------------------
  std::uint64_t in_order() const noexcept { return in_order_; }
  std::uint64_t out_of_order() const noexcept { return out_of_order_; }
  std::uint64_t timeout_releases() const noexcept {
    return timeout_releases_;
  }
  std::uint64_t late_after_skip() const noexcept { return late_after_skip_; }
  std::uint64_t flushed() const noexcept { return flushed_; }
  std::size_t buffered() const noexcept { return buffered_count_; }
  const stats::LatencyHistogram& dwell() const noexcept { return dwell_; }
  double ooo_fraction() const noexcept {
    std::uint64_t total = in_order_ + out_of_order_;
    return total ? static_cast<double>(out_of_order_) /
                       static_cast<double>(total)
                 : 0.0;
  }

 private:
  struct FlowState {
    std::uint64_t next_expected = 0;
    std::map<std::uint64_t, net::PacketPtr> pending;  // seq -> packet
    std::map<std::uint64_t, sim::TimeNs> arrival_ns;
    bool timer_armed = false;
  };

  void drain(FlowState& st);
  void arm_timer(std::uint32_t flow_id, FlowState& st);
  void on_timeout(std::uint32_t flow_id);
  void release(FlowState& st, net::PacketPtr pkt, sim::TimeNs arrived_ns);

  sim::EventQueue& eq_;
  ReorderConfig cfg_;
  Emit emit_;
  std::unordered_map<std::uint32_t, FlowState> flows_;
  std::uint64_t in_order_ = 0;
  std::uint64_t out_of_order_ = 0;
  std::uint64_t timeout_releases_ = 0;
  std::uint64_t late_after_skip_ = 0;
  std::uint64_t flushed_ = 0;
  std::size_t buffered_count_ = 0;
  stats::LatencyHistogram dwell_;
};

}  // namespace mdp::core
