// Deduplicator: first-copy-wins merge point at the egress of the multipath
// data plane. Every (flow, seq) is registered at dispatch time with its
// expected copy count; the first arriving copy passes, later copies are
// dropped. Entries retire when all copies accounted for, or via the age
// sweep for copies that were filtered inside a chain and never arrive.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "sim/time.hpp"

namespace mdp::core {

class Deduplicator {
 public:
  static std::uint64_t key(std::uint32_t flow_id, std::uint64_t seq) noexcept {
    return (std::uint64_t{flow_id} << 40) ^ seq;
  }

  /// Register a packet about to be dispatched as `copies` copies.
  void expect(std::uint64_t k, std::uint8_t copies, sim::TimeNs now) {
    entries_.emplace(k, Entry{copies, 0, now});
  }

  /// A hedge added one more copy in flight.
  void add_expected(std::uint64_t k) {
    auto it = entries_.find(k);
    if (it != entries_.end()) ++it->second.expected;
  }

  /// A copy arrived. Returns true iff it is the first (should egress).
  bool accept(std::uint64_t k) {
    auto it = entries_.find(k);
    if (it == entries_.end()) {
      // Unknown: either already retired (late copy after sweep) or never
      // registered. Treat as duplicate — never double-deliver.
      ++late_drops_;
      return false;
    }
    Entry& e = it->second;
    bool first = (e.seen == 0);
    ++e.seen;
    if (!first) ++dup_drops_;
    if (e.seen >= e.expected) entries_.erase(it);
    return first;
  }

  /// Batch drain: accept() each key in arrival order, recording per-key
  /// first-copy verdicts in `out_first` (same length as `keys`). Returns
  /// the number of firsts. Semantically identical to calling accept() in
  /// a loop — burst callers get one call per drained burst.
  std::size_t accept_batch(std::span<const std::uint64_t> keys,
                           std::span<bool> out_first) {
    std::size_t firsts = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      out_first[i] = accept(keys[i]);
      if (out_first[i]) ++firsts;
    }
    return firsts;
  }

  /// A copy was filtered in-chain and will never arrive.
  void cancel_one(std::uint64_t k) {
    auto it = entries_.find(k);
    if (it == entries_.end()) return;
    Entry& e = it->second;
    if (e.expected > 0) --e.expected;
    if (e.seen >= e.expected) entries_.erase(it);
  }

  /// True if the first copy has already egressed (hedge check).
  bool completed(std::uint64_t k) const {
    auto it = entries_.find(k);
    return it == entries_.end() || it->second.seen > 0;
  }

  /// Drop entries older than `max_age` (copies lost in-chain). Returns
  /// the number swept.
  std::size_t sweep(sim::TimeNs now, sim::TimeNs max_age) {
    std::size_t n = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (now - it->second.created_ns > max_age) {
        it = entries_.erase(it);
        ++n;
      } else {
        ++it;
      }
    }
    swept_ += n;
    return n;
  }

  // --- flow-copy registry (flow-granularity replication) -----------------
  // A replicated flow sends every sequence as the same number of copies,
  // decided once at flow arrival. Registering the flow makes that count
  // the single source of truth: expect_flow() consults it per packet, so
  // a mid-flow granularity downshift (flow deregistered) automatically
  // returns later sequences to single-copy accounting.

  /// All subsequent sequences of `flow_id` are expected as `copies`
  /// copies (clamped to >= 1).
  void register_flow(std::uint32_t flow_id, std::uint8_t copies) {
    flow_copies_[flow_id] = copies ? copies : std::uint8_t{1};
  }

  /// Forget the flow's copy count. Returns true if it was registered.
  bool deregister_flow(std::uint32_t flow_id) {
    return flow_copies_.erase(flow_id) > 0;
  }

  /// Expected copies per sequence for `flow_id`; 1 when unregistered.
  std::uint8_t flow_copies(std::uint32_t flow_id) const {
    auto it = flow_copies_.find(flow_id);
    return it == flow_copies_.end() ? std::uint8_t{1} : it->second;
  }

  /// expect() keyed by the flow registry's copy count.
  void expect_flow(std::uint32_t flow_id, std::uint64_t seq,
                   sim::TimeNs now) {
    expect(key(flow_id, seq), flow_copies(flow_id), now);
  }

  /// Flow completed: retire its pending per-sequence entries. Any copy
  /// still in flight then counts as a late drop on arrival (and is
  /// released by the caller — never double-delivered, never leaked).
  /// Valid for seq < 2^40 (the plane's per-flow counters). Returns the
  /// number of entries released.
  std::size_t release_flow(std::uint32_t flow_id) {
    std::size_t n = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (static_cast<std::uint32_t>(it->first >> 40) == flow_id) {
        it = entries_.erase(it);
        ++n;
      } else {
        ++it;
      }
    }
    return n;
  }

  std::size_t registered_flows() const noexcept { return flow_copies_.size(); }

  std::size_t pending() const noexcept { return entries_.size(); }
  std::uint64_t dup_drops() const noexcept { return dup_drops_; }
  std::uint64_t late_drops() const noexcept { return late_drops_; }
  std::uint64_t swept() const noexcept { return swept_; }

 private:
  struct Entry {
    std::uint8_t expected;
    std::uint8_t seen;
    sim::TimeNs created_ns;
  };
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::unordered_map<std::uint32_t, std::uint8_t> flow_copies_;
  std::uint64_t dup_drops_ = 0;
  std::uint64_t late_drops_ = 0;
  std::uint64_t swept_ = 0;
};

}  // namespace mdp::core
