#include "core/health.hpp"

namespace mdp::core {

void PathHealthMonitor::start() {
  eq_.schedule_in(cfg_.probe_interval_ns, [this] {
    probe_all();
    start();
  });
}

void PathHealthMonitor::probe_all() {
  for (std::size_t p = 0; p < state_.size(); ++p) {
    PathState& st = state_[p];
    // A probe still outstanding past its deadline already counted as a
    // miss via the deadline event; don't stack probes on a stuck core.
    if (st.probe_pending) continue;
    st.probe_pending = true;
    std::uint64_t epoch = ++st.probe_epoch;
    ++probes_sent_;

    // The probe rides the path core like a (tiny) packet would. Whichever
    // of {completion, deadline} fires first decides the verdict; the flag
    // is shared so the loser is a no-op.
    auto decided = std::make_shared<bool>(false);
    dp_.core(p).submit(cfg_.probe_cost_ns,
                       [this, p, epoch, decided](sim::TimeNs) {
                         if (*decided) return;
                         *decided = true;
                         on_probe_result(p, epoch, /*on_time=*/true);
                       });
    eq_.schedule_in(cfg_.probe_deadline_ns, [this, p, epoch, decided] {
      if (*decided) return;
      *decided = true;
      on_probe_result(p, epoch, /*on_time=*/false);
    });
  }
}

void PathHealthMonitor::on_probe_result(std::size_t path,
                                        std::uint64_t epoch, bool on_time) {
  PathState& st = state_[path];
  if (epoch != st.probe_epoch) return;  // stale (shouldn't happen)
  st.probe_pending = false;

  if (on_time) {
    st.misses = 0;
    if (!st.healthy && ++st.passes >= cfg_.up_after) {
      st.healthy = true;
      st.passes = 0;
      ++ups_;
      dp_.set_path_up(path, true);
      if (on_transition_) on_transition_(path, true);
    }
  } else {
    ++probes_missed_;
    st.passes = 0;
    if (st.healthy && ++st.misses >= cfg_.down_after) {
      st.healthy = false;
      st.misses = 0;
      ++downs_;
      dp_.set_path_up(path, false);
      if (on_transition_) on_transition_(path, false);
    }
  }
}

}  // namespace mdp::core
