// SPDX-License-Identifier: MIT
#pragma once

#include <cstdint>
#include <functional>

#include "core/scheduler.hpp"
#include "net/flow_key.hpp"
#include "net/packet.hpp"
#include "nf/flow_table.hpp"

namespace mdp::core {

/// Flow-granularity replication (RepNet, PAPERS.md). Per-packet hedging
/// rescues individual stragglers after a deadline has already been
/// missed; a short latency-critical flow whose path stalls still eats
/// the stall once per packet. The FlowReplicator instead decides ONCE,
/// on the first packet of a flow, whether the whole flow is worth
/// cloning onto a disjoint path set — every subsequent packet of a
/// replicated flow is sent on the same stable path pair and the egress
/// dedup keeps first-copy-wins per sequence.
///
/// Decision inputs, applied in order on the first packet:
///   1. size class — only flows known (or hinted) to be short qualify:
///      `anno().flow_bytes <= size_cutoff_bytes`, or, when the size is
///      unknown (0), the packet's kLatencyCritical traffic class;
///   2. path supply — at least `replicas` distinct up paths must exist
///      (the disjoint set comes from k_least_backlog_paths, i.e. the
///      current SLO/backlog evidence picks the replica paths);
///   3. tenant budget — an optional token hook (wired to
///      ctrl::TenantAdmission::try_consume_hedge_token) charges one
///      hedge token per replicated flow; denial falls back to a single
///      path.
/// The verdict is cached per flow in an nf::FlowTable, so elephants are
/// gated once, tokens are charged once, and the path set stays stable
/// for the flow's lifetime (filtered by up() on every packet).
struct FlowReplicatorConfig {
  bool enabled = false;
  /// Flows at or under this many bytes qualify for replication.
  std::uint32_t size_cutoff_bytes = 30'000;
  /// Replicate flows of unknown size (flow_bytes == 0) when the first
  /// packet is marked latency-critical.
  bool replicate_unknown_lc = true;
  /// Copies per replicated flow (clamped to [2, kMaxReplicaPaths]).
  std::size_t replicas = 2;
  /// Capacity of the per-flow decision table (second-chance eviction
  /// beyond this; an evicted flow is re-decided on its next packet).
  std::size_t flow_table_capacity = 1 << 15;
};

class FlowReplicator {
 public:
  static constexpr std::size_t kMaxReplicaPaths = 4;

  /// Returns true when the flow may replicate (one hedge token is
  /// consumed per replicated flow). Unset == unlimited budget.
  using TokenFn = std::function<bool(std::uint16_t tenant)>;
  /// Observes flows dropped from the decision table (eviction or
  /// erase); lets the owner reclaim per-flow dedup state.
  using DropFn = std::function<void(std::uint32_t flow_id)>;

  explicit FlowReplicator(FlowReplicatorConfig cfg = {})
      : cfg_(cfg), table_(cfg.flow_table_capacity) {
    if (cfg_.replicas < 2) cfg_.replicas = 2;
    if (cfg_.replicas > kMaxReplicaPaths) cfg_.replicas = kMaxReplicaPaths;
    table_.set_evict_callback(
        [this](const net::FlowKey& k, const State&, std::uint16_t) {
          if (on_drop_) on_drop_(flow_of(k));
        });
  }

  void set_token_fn(TokenFn fn) { token_fn_ = std::move(fn); }
  void set_drop_callback(DropFn fn) { on_drop_ = std::move(fn); }

  /// Route one packet. Returns true iff the packet's flow is replicated,
  /// with `out` holding the flow's replica paths filtered to those still
  /// up (>= 1 entries; the caller dispatches one copy per entry).
  /// Returns false for non-replicated flows — the caller falls through
  /// to its normal scheduler.
  bool route(const net::Packet& pkt, const PathContext& ctx, PathVec& out) {
    const auto& a = pkt.anno();
    const net::FlowKey k = key_of(a.flow_id);
    if (State* s = table_.find(k)) {
      if (!s->replicated) return false;
      fill_up_paths(*s, ctx, out);
      return true;
    }
    // First packet of an untracked flow: decide.
    ++flows_seen_;
    State st{};
    if (!qualifies_by_size(a)) {
      ++size_gated_;
      remember(k, a.tenant_id, st);
      return false;
    }
    PathVec cand;
    k_least_backlog_paths(ctx, cfg_.replicas, cand);
    if (cand.size() < 2) {
      ++path_starved_;
      remember(k, a.tenant_id, st);
      return false;
    }
    if (token_fn_ && !token_fn_(a.tenant_id)) {
      ++token_denied_;
      remember(k, a.tenant_id, st);
      return false;
    }
    st.replicated = true;
    st.n = static_cast<std::uint8_t>(
        cand.size() < cfg_.replicas ? cand.size() : cfg_.replicas);
    for (std::uint8_t i = 0; i < st.n; ++i) st.paths[i] = cand[i];
    remember(k, a.tenant_id, st);
    ++flows_replicated_;
    fill_up_paths(st, ctx, out);
    return true;
  }

  /// Forget a flow (flow completed). Fires the drop callback.
  bool erase(std::uint32_t flow_id) {
    const bool hit = table_.erase(key_of(flow_id));
    if (hit && on_drop_) on_drop_(flow_id);
    return hit;
  }

  /// Drop every cached decision (granularity lever turned off).
  void clear() {
    if (on_drop_) {
      table_.for_each([this](const net::FlowKey& k, const State&,
                             std::uint16_t) { on_drop_(flow_of(k)); });
    }
    table_.clear();
  }

  const FlowReplicatorConfig& config() const { return cfg_; }
  std::size_t tracked() const { return table_.size(); }
  std::uint64_t flows_seen() const { return flows_seen_; }
  std::uint64_t flows_replicated() const { return flows_replicated_; }
  std::uint64_t size_gated() const { return size_gated_; }
  std::uint64_t token_denied() const { return token_denied_; }
  std::uint64_t path_starved() const { return path_starved_; }
  std::uint64_t table_rejections() const { return table_.cap_rejections(); }

  /// The sim plane has no parsed 5-tuple — flow identity is the dense
  /// anno().flow_id. Synthesize a stable FlowKey from it.
  static net::FlowKey key_of(std::uint32_t flow_id) {
    net::FlowKey k{};
    k.src_ip = flow_id;
    return k;
  }
  static std::uint32_t flow_of(const net::FlowKey& k) { return k.src_ip; }

 private:
  struct State {
    std::uint16_t paths[kMaxReplicaPaths] = {};
    std::uint8_t n = 0;
    bool replicated = false;
  };

  bool qualifies_by_size(const net::Annotations& a) const {
    if (a.flow_bytes > 0) return a.flow_bytes <= cfg_.size_cutoff_bytes;
    return cfg_.replicate_unknown_lc &&
           a.traffic_class == net::TrafficClass::kLatencyCritical;
  }

  void remember(const net::FlowKey& k, std::uint16_t tenant,
                const State& st) {
    // Insert can fail when the table is full of pinned entries — the
    // flow is then simply re-decided on its next packet (counted in
    // table_rejections()).
    table_.insert(k, tenant, st);
  }

  void fill_up_paths(const State& s, const PathContext& ctx, PathVec& out) {
    out.clear();
    for (std::uint8_t i = 0; i < s.n; ++i) {
      if (ctx.up(s.paths[i])) out.push_back(s.paths[i]);
    }
    // Whole replica set is down: serve single-copy on any live path so
    // the flow still makes progress.
    if (out.empty()) {
      ++replica_set_down_;
      out.push_back(first_up_path(ctx));
    }
  }

  FlowReplicatorConfig cfg_;
  nf::FlowTable<State> table_;
  TokenFn token_fn_;
  DropFn on_drop_;
  std::uint64_t flows_seen_ = 0;
  std::uint64_t flows_replicated_ = 0;
  std::uint64_t size_gated_ = 0;
  std::uint64_t token_denied_ = 0;
  std::uint64_t path_starved_ = 0;
  std::uint64_t replica_set_down_ = 0;
};

}  // namespace mdp::core
