// PathEgress: terminal element of each per-path chain replica. Hands every
// packet that survived the chain back to the data plane's merge stage.
// Constructed programmatically (Router::adopt) because it carries a
// callback into the owning data plane.
#pragma once

#include <utility>

#include "click/element.hpp"
#include "sim/unique_function.hpp"

namespace mdp::core {

class PathEgress final : public click::Element {
 public:
  using Handler = std::function<void(net::PacketPtr)>;

  explicit PathEgress(Handler handler) : handler_(std::move(handler)) {}

  std::string class_name() const override { return "PathEgress"; }
  int n_outputs() const override { return 0; }
  sim::TimeNs cost_ns() const override { return 0; }

  void push(int, net::PacketPtr pkt) override { handler_(std::move(pkt)); }

 private:
  Handler handler_;
};

}  // namespace mdp::core
