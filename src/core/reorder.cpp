#include "core/reorder.hpp"

namespace mdp::core {

void ReorderBuffer::release(FlowState& st, net::PacketPtr pkt,
                            sim::TimeNs arrived_ns) {
  dwell_.record(eq_.now() - arrived_ns);
  st.next_expected = pkt->anno().seq + 1;
  emit_(std::move(pkt));
}

void ReorderBuffer::drain(FlowState& st) {
  // Release consecutive buffered packets starting at next_expected.
  while (true) {
    auto it = st.pending.find(st.next_expected);
    if (it == st.pending.end()) break;
    net::PacketPtr pkt = std::move(it->second);
    sim::TimeNs arrived = st.arrival_ns[it->first];
    st.arrival_ns.erase(it->first);
    st.pending.erase(it);
    --buffered_count_;
    release(st, std::move(pkt), arrived);
  }
}

void ReorderBuffer::arm_timer(std::uint32_t flow_id, FlowState& st) {
  if (st.timer_armed) return;
  st.timer_armed = true;
  eq_.schedule_in(cfg_.timeout_ns,
                  [this, flow_id] { on_timeout(flow_id); });
}

void ReorderBuffer::on_timeout(std::uint32_t flow_id) {
  auto fit = flows_.find(flow_id);
  if (fit == flows_.end()) return;
  FlowState& st = fit->second;
  st.timer_armed = false;
  if (st.pending.empty()) return;
  // Only skip holes that have actually waited the full timeout; packets
  // buffered more recently get a fresh timer.
  sim::TimeNs oldest = st.arrival_ns.begin()->second;
  for (const auto& [seq, t] : st.arrival_ns)
    if (t < oldest) oldest = t;
  if (eq_.now() - oldest >= cfg_.timeout_ns) {
    // Advance the window past the hole: release from the smallest
    // buffered seq onward.
    auto it = st.pending.begin();
    ++timeout_releases_;
    net::PacketPtr pkt = std::move(it->second);
    sim::TimeNs arrived = st.arrival_ns[it->first];
    st.arrival_ns.erase(it->first);
    st.pending.erase(it);
    --buffered_count_;
    release(st, std::move(pkt), arrived);
    drain(st);
  }
  if (!st.pending.empty()) arm_timer(flow_id, st);
}

void ReorderBuffer::submit(net::PacketPtr pkt) {
  const auto& a = pkt->anno();
  FlowState& st = flows_[a.flow_id];

  if (a.seq == st.next_expected) {
    ++in_order_;
    release(st, std::move(pkt), eq_.now());
    drain(st);
    return;
  }

  ++out_of_order_;
  if (a.seq < st.next_expected) {
    // Predecessor already skipped past this seq (timeout); deliver late
    // rather than drop — better a reordered packet than a lost one.
    ++late_after_skip_;
    dwell_.record(0);
    emit_(std::move(pkt));
    return;
  }

  if (!cfg_.enabled) {
    // Detection-only mode: count and pass through immediately.
    st.next_expected = a.seq + 1;
    dwell_.record(0);
    emit_(std::move(pkt));
    return;
  }

  std::uint64_t seq = a.seq;
  st.arrival_ns[seq] = eq_.now();
  st.pending.emplace(seq, std::move(pkt));
  ++buffered_count_;
  arm_timer(a.flow_id, st);
}

void ReorderBuffer::submit_batch(std::span<net::PacketPtr> pkts) {
  for (auto& pkt : pkts)
    if (pkt) submit(std::move(pkt));
}

std::size_t ReorderBuffer::flush_all() {
  std::size_t released = 0;
  for (auto& [flow_id, st] : flows_) {
    // pending is seq-ordered (std::map), so releasing front-to-back keeps
    // per-flow order while hopping the holes.
    while (!st.pending.empty()) {
      auto it = st.pending.begin();
      net::PacketPtr pkt = std::move(it->second);
      sim::TimeNs arrived = st.arrival_ns[it->first];
      st.arrival_ns.erase(it->first);
      st.pending.erase(it);
      --buffered_count_;
      ++released;
      release(st, std::move(pkt), arrived);
    }
    // Any armed timer now finds pending empty and disarms itself.
  }
  flushed_ += released;
  return released;
}

}  // namespace mdp::core
