// SPDX-License-Identifier: MIT
#pragma once

#include <cstdint>

namespace mdp::core {

/// Replication granularity: the control plane's third lever (after path
/// admission and hedge deadline). It decides *what unit* the plane
/// duplicates when the tail needs help:
///
///   - kNone:        single path, no duplication of any kind.
///   - kPacketHedge: per-packet hedging only (seed behavior) — a straggler
///                   packet is re-sent after the hedge deadline.
///   - kFlowReplica: flow-granularity replication only — short
///                   latency-critical flows are cloned wholesale onto a
///                   disjoint path set at flow-arrival time (RepNet).
///   - kBoth:        flow replicas for short flows plus packet hedging for
///                   whatever still travels single-copy.
enum class Granularity : std::uint8_t {
  kNone = 0,
  kPacketHedge = 1,
  kFlowReplica = 2,
  kBoth = 3,
};

constexpr const char* granularity_name(Granularity g) {
  switch (g) {
    case Granularity::kNone: return "none";
    case Granularity::kPacketHedge: return "packet_hedge";
    case Granularity::kFlowReplica: return "flow_replica";
    case Granularity::kBoth: return "both";
  }
  return "?";
}

/// True when per-packet hedging is permitted under `g`.
constexpr bool granularity_allows_hedge(Granularity g) {
  return g == Granularity::kPacketHedge || g == Granularity::kBoth;
}

/// True when flow-granularity replication is permitted under `g`.
constexpr bool granularity_allows_flow_replica(Granularity g) {
  return g == Granularity::kFlowReplica || g == Granularity::kBoth;
}

}  // namespace mdp::core
