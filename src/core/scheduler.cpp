#include "core/scheduler.hpp"

#include <algorithm>
#include <optional>

namespace mdp::core {

std::uint16_t first_up_path(const PathContext& ctx) {
  for (std::size_t p = 0; p < ctx.num_paths(); ++p)
    if (ctx.up(p)) return static_cast<std::uint16_t>(p);
  return 0;
}

std::uint16_t least_backlog_path(const PathContext& ctx) {
  std::uint16_t best = first_up_path(ctx);
  sim::TimeNs best_backlog = ctx.up(best) ? ctx.backlog_ns(best)
                                          : UINT64_MAX;
  for (std::size_t p = 0; p < ctx.num_paths(); ++p) {
    if (!ctx.up(p)) continue;
    sim::TimeNs b = ctx.backlog_ns(p);
    if (b < best_backlog) {
      best_backlog = b;
      best = static_cast<std::uint16_t>(p);
    }
  }
  return best;
}

void k_least_backlog_paths(const PathContext& ctx, std::size_t k,
                           PathVec& out) {
  struct Cand {
    sim::TimeNs backlog;
    std::uint16_t path;
  };
  std::vector<Cand> cands;
  cands.reserve(ctx.num_paths());
  for (std::size_t p = 0; p < ctx.num_paths(); ++p)
    if (ctx.up(p))
      cands.push_back({ctx.backlog_ns(p), static_cast<std::uint16_t>(p)});
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    return a.backlog != b.backlog ? a.backlog < b.backlog
                                  : a.path < b.path;
  });
  for (std::size_t i = 0; i < cands.size() && i < k; ++i)
    out.push_back(cands[i].path);
}

// --- BatchPathContext -----------------------------------------------------------

BatchPathContext::BatchPathContext(const PathContext& live)
    : now_(live.now()) {
  const std::size_t n = live.num_paths();
  up_.resize(n);
  backlog_.resize(n);
  depth_.resize(n);
  inflight_.resize(n);
  ewma_.resize(n);
  sim::TimeNs backlog_sum = 0;
  std::size_t depth_sum = 0;
  for (std::size_t p = 0; p < n; ++p) {
    up_[p] = live.up(p) ? 1 : 0;
    backlog_[p] = live.backlog_ns(p);
    depth_[p] = live.queue_depth(p);
    inflight_[p] = live.inflight(p);
    ewma_[p] = live.ewma_latency_ns(p);
    backlog_sum += backlog_[p];
    depth_sum += depth_[p];
  }
  // Mean backlog per queued item approximates the service cost one more
  // dispatch adds; 1 µs nominal when the system is idle so early picks
  // in a burst still repel later ones.
  est_cost_ns_ = depth_sum > 0 ? backlog_sum / depth_sum : 1'000;
  if (est_cost_ns_ == 0) est_cost_ns_ = 1'000;
}

// --- Scheduler (default batch = per-packet loop) --------------------------------

void Scheduler::select_batch(std::span<const net::Packet* const> pkts,
                             const PathContext& ctx, sim::Rng& rng,
                             std::vector<PathVec>& out) {
  out.resize(pkts.size());
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    out[i].clear();
    select(*pkts[i], ctx, rng, out[i]);
  }
}

// --- SinglePath -----------------------------------------------------------------

void SinglePathScheduler::select(const net::Packet&, const PathContext& ctx,
                                 sim::Rng&, PathVec& out) {
  std::uint16_t p = pinned_;
  if (p >= ctx.num_paths() || !ctx.up(p)) p = first_up_path(ctx);
  out.push_back(p);
}

// --- RssHash --------------------------------------------------------------------

void RssHashScheduler::select(const net::Packet& pkt, const PathContext& ctx,
                              sim::Rng&, PathVec& out) {
  std::size_t n = ctx.num_paths();
  auto start = static_cast<std::size_t>(pkt.anno().flow_hash % n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t p = (start + i) % n;
    if (ctx.up(p)) {
      out.push_back(static_cast<std::uint16_t>(p));
      return;
    }
  }
  out.push_back(0);
}

// --- RoundRobin -----------------------------------------------------------------

void RoundRobinScheduler::select(const net::Packet&, const PathContext& ctx,
                                 sim::Rng&, PathVec& out) {
  std::size_t n = ctx.num_paths();
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t p = (next_ + i) % n;
    if (ctx.up(p)) {
      next_ = (p + 1) % n;
      out.push_back(static_cast<std::uint16_t>(p));
      return;
    }
  }
  out.push_back(0);
}

// --- Jsq ------------------------------------------------------------------------

void JsqScheduler::select(const net::Packet&, const PathContext& ctx,
                          sim::Rng&, PathVec& out) {
  out.push_back(least_backlog_path(ctx));
}

void JsqScheduler::select_batch(std::span<const net::Packet* const> pkts,
                                const PathContext& ctx, sim::Rng&,
                                std::vector<PathVec>& out) {
  BatchPathContext snap(ctx);
  const sim::TimeNs cost = snap.est_dispatch_cost_ns();
  out.resize(pkts.size());
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    out[i].clear();
    const std::uint16_t p = least_backlog_path(snap);
    out[i].push_back(p);
    snap.note_dispatch(p, cost);
  }
}

// --- LeastLatency ---------------------------------------------------------------

void LeastLatencyScheduler::select(const net::Packet&, const PathContext& ctx,
                                   sim::Rng& rng, PathVec& out) {
  // Epsilon-greedy: occasionally probe a random up path so a path whose
  // EWMA went stale (e.g. after an interference burst ended) can recover.
  if (rng.bernoulli(epsilon_)) {
    std::size_t n = ctx.num_paths();
    for (std::size_t tries = 0; tries < n; ++tries) {
      auto p = static_cast<std::size_t>(rng.uniform_u64(n));
      if (ctx.up(p)) {
        out.push_back(static_cast<std::uint16_t>(p));
        return;
      }
    }
  }
  // Score = EWMA latency + current backlog (a path can be historically
  // fast but momentarily buried; backlog captures that).
  double best_score = 0;
  int best = -1;
  for (std::size_t p = 0; p < ctx.num_paths(); ++p) {
    if (!ctx.up(p)) continue;
    double score = ctx.ewma_latency_ns(p) +
                   static_cast<double>(ctx.backlog_ns(p));
    if (best < 0 || score < best_score) {
      best_score = score;
      best = static_cast<int>(p);
    }
  }
  out.push_back(best < 0 ? std::uint16_t{0}
                         : static_cast<std::uint16_t>(best));
}

// --- Flowlet --------------------------------------------------------------------

void FlowletScheduler::select(const net::Packet& pkt, const PathContext& ctx,
                              sim::Rng&, PathVec& out) {
  std::uint32_t flow = pkt.anno().flow_id;
  sim::TimeNs now = ctx.now();
  auto it = table_.find(flow);
  if (it != table_.end() && ctx.up(it->second.path) &&
      now - it->second.last_seen_ns <= gap_ns_) {
    it->second.last_seen_ns = now;
    out.push_back(it->second.path);
    return;
  }
  std::uint16_t p = least_backlog_path(ctx);
  if (it != table_.end() && it->second.path != p) ++switches_;
  table_[flow] = {p, now};
  out.push_back(p);
}

// --- Redundant ------------------------------------------------------------------

void RedundantScheduler::select(const net::Packet&, const PathContext& ctx,
                                sim::Rng&, PathVec& out) {
  k_least_backlog_paths(ctx, r_, out);
  if (out.empty()) out.push_back(0);  // no up paths: pin to 0
}

// --- AdaptiveMdp ----------------------------------------------------------------

bool AdaptiveMdpScheduler::is_critical(const net::Packet& pkt)
    const noexcept {
  const auto& a = pkt.anno();
  if (a.traffic_class == net::TrafficClass::kLatencyCritical) return true;
  if (cfg_.small_flow_bytes > 0 && a.flow_bytes > 0 &&
      a.flow_bytes <= cfg_.small_flow_bytes)
    return true;
  return false;
}

void AdaptiveMdpScheduler::select(const net::Packet& pkt,
                                  const PathContext& ctx, sim::Rng& rng,
                                  PathVec& out) {
  if (is_critical(pkt)) {
    k_least_backlog_paths(ctx, cfg_.replicate_k, out);
    // Load gate: drop extra copies whose target path already has a
    // backlog above the cap — redundancy without spare capacity only
    // adds queueing (the Fig 9 collapse).
    if (cfg_.replicate_backlog_cap_ns > 0) {
      while (out.size() > 1 &&
             ctx.backlog_ns(out.back()) > cfg_.replicate_backlog_cap_ns)
        out.pop_back();
    }
    if (out.empty()) out.push_back(0);
    if (out.size() > 1) ++replicated_;
    return;
  }
  flowlet_.select(pkt, ctx, rng, out);
}

void AdaptiveMdpScheduler::select_batch(
    std::span<const net::Packet* const> pkts, const PathContext& ctx,
    sim::Rng& rng, std::vector<PathVec>& out) {
  BatchPathContext snap(ctx);
  const sim::TimeNs cost = snap.est_dispatch_cost_ns();
  out.resize(pkts.size());
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    out[i].clear();
    select(*pkts[i], snap, rng, out[i]);
    for (std::uint16_t p : out[i]) snap.note_dispatch(p, cost);
  }
}

sim::TimeNs AdaptiveMdpScheduler::hedge_timeout_ns(
    const net::Packet& pkt, const PathContext& ctx) const {
  if (!cfg_.hedge_enabled) return 0;
  // Replicated packets already have redundancy; only hedge single copies.
  if (is_critical(pkt) && cfg_.replicate_k > 1) return 0;
  if (cfg_.hedge_timeout_ns > 0) return cfg_.hedge_timeout_ns;
  double mean = 0;
  std::size_t n = 0;
  for (std::size_t p = 0; p < ctx.num_paths(); ++p) {
    double e = ctx.ewma_latency_ns(p);
    if (e > 0) {
      mean += e;
      ++n;
    }
  }
  if (n == 0) return cfg_.hedge_min_ns;
  auto t = static_cast<sim::TimeNs>(cfg_.hedge_ewma_factor * mean /
                                    static_cast<double>(n));
  return std::max(t, cfg_.hedge_min_ns);
}

// --- factory ---------------------------------------------------------------------

namespace {

/// Parse the text after "name:" as a non-negative integer; nullopt on
/// empty/garbage/overflow (the factory then rejects the whole name).
std::optional<std::uint64_t> parse_param_u64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    if (v > (UINT64_MAX - 9) / 10) return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::optional<double> parse_param_double(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::size_t used = 0;
  double v = 0;
  try {
    v = std::stod(text, &used);
  } catch (...) {
    return std::nullopt;
  }
  if (used != text.size() || v < 0) return std::nullopt;
  return v;
}

}  // namespace

SchedulerPtr make_scheduler(const std::string& name) {
  // Bare names: the defaults every sweep and doc references.
  if (name == "single") return std::make_unique<SinglePathScheduler>();
  if (name == "rss") return std::make_unique<RssHashScheduler>();
  if (name == "rr") return std::make_unique<RoundRobinScheduler>();
  if (name == "jsq") return std::make_unique<JsqScheduler>();
  if (name == "lla") return std::make_unique<LeastLatencyScheduler>();
  if (name == "flowlet") return std::make_unique<FlowletScheduler>();
  if (name == "red2") return std::make_unique<RedundantScheduler>(2);
  if (name == "red3") return std::make_unique<RedundantScheduler>(3);
  if (name == "red4") return std::make_unique<RedundantScheduler>(4);
  if (name == "adaptive") return std::make_unique<AdaptiveMdpScheduler>();

  // Parameterized names, "<policy>:<param>". Benches and the control
  // plane construct tuned instances without bespoke factory code:
  //   redundant:<r> / red:<r>   r replicas (>= 1)
  //   flowlet:<gap_ns>          flowlet idle gap in ns (> 0)
  //   single:<path>             pin to a specific path
  //   lla:<epsilon>             probe rate in [0, 1]
  //   adaptive:<k>              replicate_k copies for latency-critical
  //   rss:<hedge_timeout_ns>    per-flow ECMP + fixed packet-hedge deadline
  const std::size_t colon = name.find(':');
  if (colon == std::string::npos) return nullptr;
  const std::string base = name.substr(0, colon);
  const std::string param = name.substr(colon + 1);

  if (base == "redundant" || base == "red") {
    auto r = parse_param_u64(param);
    if (!r || *r == 0 || *r > 64) return nullptr;
    return std::make_unique<RedundantScheduler>(
        static_cast<std::size_t>(*r));
  }
  if (base == "flowlet") {
    auto gap = parse_param_u64(param);
    if (!gap || *gap == 0) return nullptr;
    return std::make_unique<FlowletScheduler>(*gap);
  }
  if (base == "single") {
    auto pin = parse_param_u64(param);
    if (!pin || *pin > UINT16_MAX) return nullptr;
    return std::make_unique<SinglePathScheduler>(
        static_cast<std::uint16_t>(*pin));
  }
  if (base == "lla") {
    auto eps = parse_param_double(param);
    if (!eps || *eps > 1.0) return nullptr;
    return std::make_unique<LeastLatencyScheduler>(*eps);
  }
  if (base == "adaptive") {
    auto k = parse_param_u64(param);
    if (!k || *k == 0 || *k > 64) return nullptr;
    AdaptiveMdpConfig cfg;
    cfg.replicate_k = static_cast<std::size_t>(*k);
    return std::make_unique<AdaptiveMdpScheduler>(cfg);
  }
  if (base == "rss") {
    auto t = parse_param_u64(param);
    if (!t) return nullptr;
    auto s = std::make_unique<RssHashScheduler>();
    s->set_hedge_timeout_ns(static_cast<sim::TimeNs>(*t));
    return s;
  }
  return nullptr;
}

std::vector<std::string> evaluation_policy_names() {
  return {"single", "rss", "rr", "jsq", "lla", "flowlet", "red2",
          "adaptive"};
}

}  // namespace mdp::core
