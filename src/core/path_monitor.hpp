// PathMonitor: per-path telemetry the schedulers consume — in-flight count,
// EWMA of observed per-path latency, completion counts. Updated by the
// data plane on every dispatch/completion.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace mdp::core {

class PathMonitor {
 public:
  explicit PathMonitor(std::size_t num_paths, double ewma_alpha = 0.2)
      : alpha_(ewma_alpha), paths_(num_paths) {}

  void on_dispatch(std::size_t path) noexcept {
    ++paths_[path].inflight;
    ++paths_[path].dispatched;
  }

  void on_complete(std::size_t path, sim::TimeNs latency_ns) noexcept {
    auto& p = paths_[path];
    // An underflow means a completion was reported without a matching
    // dispatch — an accounting bug upstream. Count it loudly instead of
    // silently clamping; tests assert this stays zero.
    if (p.inflight > 0) {
      --p.inflight;
    } else {
      ++p.underflows;
      ++underflows_;
    }
    ++p.completed;
    if (p.ewma_latency_ns <= 0) {
      p.ewma_latency_ns = static_cast<double>(latency_ns);
    } else {
      p.ewma_latency_ns = alpha_ * static_cast<double>(latency_ns) +
                          (1 - alpha_) * p.ewma_latency_ns;
    }
    if (latency_ns > p.max_latency_ns) p.max_latency_ns = latency_ns;
  }

  /// A dispatched copy that never completed (filtered inside the chain).
  void on_filtered(std::size_t path) noexcept {
    auto& p = paths_[path];
    if (p.inflight > 0) {
      --p.inflight;
    } else {
      ++p.underflows;
      ++underflows_;
    }
    ++p.filtered;
  }

  std::uint64_t inflight(std::size_t path) const noexcept {
    return paths_[path].inflight;
  }
  double ewma_latency_ns(std::size_t path) const noexcept {
    return paths_[path].ewma_latency_ns;
  }
  std::uint64_t dispatched(std::size_t path) const noexcept {
    return paths_[path].dispatched;
  }
  std::uint64_t completed(std::size_t path) const noexcept {
    return paths_[path].completed;
  }
  std::uint64_t filtered(std::size_t path) const noexcept {
    return paths_[path].filtered;
  }
  sim::TimeNs max_latency_ns(std::size_t path) const noexcept {
    return paths_[path].max_latency_ns;
  }
  std::uint64_t underflows(std::size_t path) const noexcept {
    return paths_[path].underflows;
  }
  /// Total inflight underflows across all paths (should always be 0).
  std::uint64_t inflight_underflows() const noexcept { return underflows_; }
  std::size_t num_paths() const noexcept { return paths_.size(); }

  /// Mean of per-path EWMAs over paths that have observations (the
  /// auto-hedge timeout baseline).
  double mean_ewma_latency_ns() const noexcept {
    double sum = 0;
    std::size_t n = 0;
    for (const auto& p : paths_) {
      if (p.ewma_latency_ns > 0) {
        sum += p.ewma_latency_ns;
        ++n;
      }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  }

 private:
  struct PerPath {
    std::uint64_t inflight = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t completed = 0;
    std::uint64_t filtered = 0;
    std::uint64_t underflows = 0;
    double ewma_latency_ns = 0;
    sim::TimeNs max_latency_ns = 0;
  };
  double alpha_;
  std::vector<PerPath> paths_;
  std::uint64_t underflows_ = 0;
};

}  // namespace mdp::core
