// MdpDataPlane: the multipath last mile, assembled.
//
//                      +-- path 0: SimCore --> chain replica --+
//   ingress -> sched --+-- path 1: SimCore --> chain replica --+--> dedup
//                      +-- ...                                 |     |
//                                                              |  reorder
//                                                              +---> egress
//
// Each path is one simulated worker core (queueing model, see SimCore)
// running its own functional replica of the NF chain (real Click elements:
// the firewall really filters, the NAT really rewrites). The service time
// charged on the core is the chain's cost-model time with lognormal jitter;
// when the job completes, the packet is pushed through the chain replica
// for its functional effect, then merged: first-copy-wins dedup, per-flow
// resequencing, and finally the egress callback.
//
// Interference is attached from outside (see sim::InterferenceModel) onto
// any subset of the path cores — that is the "noisy neighbor" of the
// experiments.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "click/router.hpp"
#include "core/dedup.hpp"
#include "core/flow_replicator.hpp"
#include "core/granularity.hpp"
#include "core/path_monitor.hpp"
#include "core/reorder.hpp"
#include "core/scheduler.hpp"
#include "net/packet_pool.hpp"
#include "nf/chain.hpp"
#include "sim/distributions.hpp"
#include "sim/event_queue.hpp"
#include "sim/sim_core.hpp"
#include "stats/counters.hpp"
#include "trace/tracer.hpp"

namespace mdp::core {

/// Fixed hot-path counter set bumped per packet (enum-indexed; see
/// stats::EnumCounters). Ad-hoc/cold counters stay on the string API.
enum class DpCounter : std::uint8_t {
  kIngress = 0,
  kEgress,
  kDispatched,
  kReplicas,
  kFlowReplicas,
  kHedges,
  kDupDropped,
  kQueueDrops,
  kChainFiltered,
  kCount,
};

const char* dp_counter_name(DpCounter c) noexcept;

struct DataPlaneConfig {
  std::size_t num_paths = 4;
  std::string chain = "fw-nat-lb";  ///< nf::ChainSpec preset name
  /// Run packets through the real chain elements (functional effects +
  /// chain drops). When false, only the cost model applies.
  bool functional_chain = true;
  /// Lognormal sigma on the per-packet service time (0 = deterministic).
  double service_jitter_sigma = 0.25;
  /// Additional service cost per payload byte (models touch cost).
  double per_byte_ns = 0.15;
  /// Dispatch latency-critical packets ahead of queued best-effort work
  /// on their path core (strict priority). The classic alternative to
  /// multipath — helps against queueing but not against CPU theft, which
  /// stalls the whole core regardless of queue order (Fig 12 ablation).
  bool lc_priority = false;
  /// Per-path ingress queue bound (jobs waiting on the core). 0 =
  /// unbounded. Real vNIC/vhost queues are bounded; overload then shows
  /// up as drops instead of unbounded delay.
  std::size_t path_queue_capacity = 0;
  ReorderConfig reorder{};
  /// Flow-granularity replication (RepNet). Disabled by default: the
  /// plane then behaves exactly as before this stage existed. When
  /// enabled, the plane starts at Granularity::kBoth and the control
  /// plane's granularity lever (ctrl::Controller) can move it.
  FlowReplicatorConfig flow_repl{};
  sim::TimeNs dedup_sweep_interval_ns = 10 * sim::kMillisecond;
  sim::TimeNs dedup_max_age_ns = 50 * sim::kMillisecond;
  std::uint64_t seed = 42;
};

class MdpDataPlane final : public PathContext {
 public:
  using Egress = std::function<void(net::PacketPtr)>;

  MdpDataPlane(sim::EventQueue& eq, net::PacketPool& pool,
               DataPlaneConfig cfg, SchedulerPtr scheduler);
  ~MdpDataPlane() override;

  /// Egress sink for merged, in-order traffic. anno().egress_ns is set.
  void set_egress(Egress egress) { egress_ = std::move(egress); }

  /// Entry point: one packet from the NIC/workload into the last mile.
  void ingress(net::PacketPtr pkt);

  /// Access a path's core, e.g. to attach an InterferenceModel.
  sim::SimCore& core(std::size_t path) { return *paths_[path].core; }
  /// Mark a path administratively up/down (failure injection).
  void set_path_up(std::size_t path, bool up) { paths_[path].up = up; }

  /// Control-plane lever: what unit the plane duplicates. Gates both the
  /// FlowReplicator (flow replicas) and arm_hedge (packet hedges); kNone
  /// additionally truncates scheduler-driven replication to one copy.
  /// Turning flow replication off drops every cached flow decision.
  void set_granularity(Granularity g) {
    if (g == granularity_) return;
    granularity_ = g;
    if (replicator_ && !granularity_allows_flow_replica(g))
      replicator_->clear();
  }
  Granularity granularity() const noexcept { return granularity_; }

  /// Flow completed (workload signal): forget its replication decision
  /// and retire its pending dedup entries. Copies still in flight become
  /// late drops — released, never double-delivered.
  void end_flow(std::uint32_t flow_id) {
    if (replicator_) replicator_->erase(flow_id);
    dedup_.release_flow(flow_id);
  }

  // --- PathContext (the scheduler's view) -----------------------------------
  std::size_t num_paths() const override { return paths_.size(); }
  bool up(std::size_t path) const override { return paths_[path].up; }
  /// Schedulers see the *observable* backlog: their own queued packets.
  /// Interference in progress is invisible at dispatch time, exactly as a
  /// hypervisor-preempted core looks to a vSwitch dispatcher.
  sim::TimeNs backlog_ns(std::size_t path) const override {
    return paths_[path].core->visible_backlog_ns();
  }
  std::size_t queue_depth(std::size_t path) const override {
    return paths_[path].core->queue_depth();
  }
  std::uint64_t inflight(std::size_t path) const override {
    return monitor_.inflight(path);
  }
  double ewma_latency_ns(std::size_t path) const override {
    return monitor_.ewma_latency_ns(path);
  }
  sim::TimeNs now() const override { return eq_.now(); }

  /// Attach (or detach with nullptr) a stage tracer. Spans are stamped
  /// only while a tracer is attached and enabled; the disabled cost is
  /// one pointer test per stage.
  void set_tracer(trace::Tracer* tracer) noexcept { tracer_ = tracer; }
  trace::Tracer* tracer() const noexcept { return tracer_; }

  // --- introspection ----------------------------------------------------------
  PathMonitor& monitor() noexcept { return monitor_; }
  const PathMonitor& monitor() const noexcept { return monitor_; }
  const Deduplicator& dedup() const noexcept { return dedup_; }
  const ReorderBuffer& reorder() const noexcept { return *reorder_; }
  /// Mutable access for control-plane actuation (ReorderBuffer::flush_all
  /// when draining a quarantined path; see ctrl::SimPlaneActuator).
  ReorderBuffer& reorder_mut() noexcept { return *reorder_; }
  Scheduler& scheduler() noexcept { return *scheduler_; }
  /// nullptr unless cfg.flow_repl.enabled. Mutable so owners can wire
  /// the per-tenant token hook (ctrl::TenantAdmission).
  FlowReplicator* flow_replicator() noexcept { return replicator_.get(); }
  const FlowReplicator* flow_replicator() const noexcept {
    return replicator_.get();
  }
  /// Materialized view of hot-path (enum) + ad-hoc (string) counters.
  stats::CounterSet counters() const;
  const stats::EnumCounters<DpCounter>& fast_counters() const noexcept {
    return fast_counters_;
  }
  /// Register every data-plane metric (counters, per-path telemetry,
  /// dedup/reorder stats, dwell histogram) with a StatsRegistry. The
  /// registry's snapshot() must not outlive this data plane.
  void register_stats(trace::StatsRegistry& reg) const;
  const DataPlaneConfig& config() const noexcept { return cfg_; }
  sim::TimeNs chain_cost_ns() const noexcept { return chain_cost_ns_; }
  click::Router& router() noexcept { return router_; }

  std::uint64_t ingress_count() const noexcept { return ingress_count_; }
  std::uint64_t egress_count() const noexcept { return egress_count_; }

  // --- duplicate-byte accounting (FCT benchmarks) -----------------------------
  /// Payload bytes that entered at ingress (one count per packet).
  std::uint64_t ingress_bytes() const noexcept { return ingress_bytes_; }
  /// Payload bytes spent on redundant copies (scheduler replicas, flow
  /// replicas, and fired hedges).
  std::uint64_t extra_copy_bytes() const noexcept { return extra_copy_bytes_; }
  /// Fraction of all transmitted bytes that were duplicates.
  double duplicate_byte_fraction() const noexcept {
    const std::uint64_t total = ingress_bytes_ + extra_copy_bytes_;
    return total ? static_cast<double>(extra_copy_bytes_) /
                       static_cast<double>(total)
                 : 0.0;
  }

 private:
  struct Path {
    std::unique_ptr<sim::SimCore> core;
    click::Element* chain_head = nullptr;
    bool up = true;
  };

  void dispatch(std::uint16_t path, net::PacketPtr pkt);
  void on_path_complete(std::uint16_t path, net::PacketPtr pkt);
  void arm_hedge(std::uint64_t key, std::uint16_t original_path,
                 sim::TimeNs timeout, net::PacketPtr clone);
  void schedule_dedup_sweep();
  sim::TimeNs service_time(const net::Packet& pkt);

  sim::EventQueue& eq_;
  net::PacketPool& pool_;
  DataPlaneConfig cfg_;
  SchedulerPtr scheduler_;
  click::Router router_;
  std::vector<Path> paths_;
  PathMonitor monitor_;
  Deduplicator dedup_;
  std::unique_ptr<FlowReplicator> replicator_;
  Granularity granularity_ = Granularity::kPacketHedge;
  std::unique_ptr<ReorderBuffer> reorder_;
  Egress egress_;
  sim::Rng rng_;
  sim::LogNormal jitter_;
  sim::TimeNs chain_cost_ns_ = 0;
  stats::EnumCounters<DpCounter> fast_counters_;
  stats::CounterSet adhoc_counters_;
  trace::Tracer* tracer_ = nullptr;
  std::unordered_map<std::uint32_t, std::uint64_t> next_seq_;
  // Hedge copies parked until the timeout decides their fate.
  std::unordered_map<std::uint64_t, net::PacketPtr> hedge_parked_;
  std::uint64_t ingress_count_ = 0;
  std::uint64_t egress_count_ = 0;
  std::uint64_t ingress_bytes_ = 0;
  std::uint64_t extra_copy_bytes_ = 0;
  bool egress_consumed_ = false;  // set by PathEgress during a chain push
  PathVec select_buf_;
};

}  // namespace mdp::core
