// ThreadedDataPlane: the multipath last mile on real OS threads.
//
// One ingress (caller) thread dispatches packets onto per-path SPSC rings;
// one worker thread per path pops its ring, performs the per-packet work
// (a real checksum pass over the payload, calibrated to the requested
// service time), and pushes to a shared MPMC completion ring; a collector
// thread merges (first-copy-wins is trivial here: single-copy policies) and
// reports per-packet latency via callback.
//
// This is NOT the experiment vehicle (the discrete-event model is, see
// MdpDataPlane) — it validates that the data-path building blocks (rings,
// dispatch, merge) are genuinely lock-free and fast on real hardware, and
// feeds Tab 4.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ring/mpmc_ring.hpp"
#include "ring/spsc_ring.hpp"
#include "stats/histogram.hpp"

namespace mdp::core {

struct ThreadedConfig {
  std::size_t num_paths = 2;
  std::size_t ring_capacity = 4096;
  std::size_t pool_size = 8192;
  std::size_t payload_bytes = 256;   ///< bytes the worker actually touches
  std::size_t work_iterations = 4;   ///< checksum passes per packet
  std::string policy = "jsq";        ///< "jsq" | "rr" | "hash"
  /// Attribute each packet's latency to ring wait / service / collection
  /// (two extra clock reads per packet on the worker; off for pure
  /// throughput benchmarking).
  bool record_stage_hist = false;
};

class ThreadedDataPlane {
 public:
  /// Called on the collector thread for every completed packet.
  using Completion =
      std::function<void(std::uint64_t latency_ns, std::uint16_t path)>;

  explicit ThreadedDataPlane(ThreadedConfig cfg, Completion on_complete);
  ~ThreadedDataPlane();

  ThreadedDataPlane(const ThreadedDataPlane&) = delete;
  ThreadedDataPlane& operator=(const ThreadedDataPlane&) = delete;

  /// Launch worker + collector threads.
  void start();

  /// Submit one packet from the caller thread. Returns false if the
  /// buffer pool or the chosen path ring is momentarily full.
  bool ingress(std::uint64_t flow_hash);

  /// Wait until everything in flight has drained, then stop all threads.
  void stop();

  std::uint64_t completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t submitted() const noexcept { return submitted_; }
  std::uint64_t rejected() const noexcept { return rejected_; }
  std::uint64_t per_path_count(std::size_t p) const noexcept {
    return path_counts_[p];
  }

  // Stage attribution (valid when cfg.record_stage_hist; read after
  // stop() — the histograms are written by the collector thread).
  /// Ingress enqueue -> worker pop (path ring wait).
  const stats::LatencyHistogram& queue_wait_hist() const noexcept {
    return queue_wait_hist_;
  }
  /// Worker pop -> work done (per-packet service).
  const stats::LatencyHistogram& service_hist() const noexcept {
    return service_hist_;
  }
  /// Work done -> collector pop (completion ring + merge wait).
  const stats::LatencyHistogram& merge_wait_hist() const noexcept {
    return merge_wait_hist_;
  }

 private:
  struct Slot {
    std::uint64_t enqueue_ns = 0;
    std::uint64_t dequeue_ns = 0;  ///< worker pop (stage attribution)
    std::uint64_t done_ns = 0;     ///< work complete (stage attribution)
    std::uint16_t path = 0;
    std::uint32_t payload_seed = 0;
  };

  std::uint16_t pick_path(std::uint64_t flow_hash);
  void worker_loop(std::size_t path);
  void collector_loop();
  static std::uint64_t now_ns();

  ThreadedConfig cfg_;
  Completion on_complete_;
  std::vector<std::unique_ptr<ring::SpscRing<Slot*>>> path_rings_;
  std::unique_ptr<ring::MpmcRing<Slot*>> done_ring_;
  std::unique_ptr<ring::MpmcRing<Slot*>> free_ring_;
  std::vector<Slot> slots_;
  std::vector<std::uint8_t> work_buf_;
  std::vector<std::thread> workers_;
  std::thread collector_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> workers_done_{false};
  std::atomic<std::uint64_t> completed_{0};
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::size_t rr_next_ = 0;
  std::vector<std::uint64_t> path_counts_;
  stats::LatencyHistogram queue_wait_hist_;
  stats::LatencyHistogram service_hist_;
  stats::LatencyHistogram merge_wait_hist_;
};

}  // namespace mdp::core
