// ThreadedDataPlane: the multipath last mile on real OS threads.
//
// One ingress (caller) thread dispatches packets onto per-path SPSC rings;
// one worker thread per path pops its ring, performs the per-packet work
// (a real checksum pass over the payload, calibrated to the requested
// service time), and pushes to a shared MPMC completion ring; a collector
// thread merges (first-copy-wins is trivial here: single-copy policies) and
// reports per-packet latency via callback.
//
// The hot path is burst-oriented end-to-end, DPDK style: ingress_burst()
// admits up to a burst of packets with the dispatch policy and timestamp
// bookkeeping amortized to once per burst, workers pop their ring in bursts
// of cfg.burst_size and push completions in bursts, and the collector
// drains/recycles in bursts. burst_size = 1 degenerates to the per-packet
// behavior; the per-packet ingress() entry point is kept for callers that
// arrive one packet at a time.
//
// Packet sources. Two ways to feed the plane:
//   - ingress()/ingress_burst(flow_hashes): the legacy synthetic mode —
//     no frames, per-packet work runs over a scratch payload buffer.
//   - cfg.backend + pump(): real frames. pump(), called repeatedly from
//     the caller thread, rx_bursts frames from the io::PacketBackend,
//     dispatches them by anno().flow_hash, and tx_bursts completed frames
//     back out. All backend and pool interaction stays on the caller
//     thread (pools are single-threaded); workers only read frame bytes,
//     the collector only routes slots. See docs/IO_BACKENDS.md.
//
// This is NOT the experiment vehicle (the discrete-event model is, see
// MdpDataPlane) — it validates that the data-path building blocks (rings,
// dispatch, merge, bursting, backend I/O) are genuinely lock-free and fast
// on real hardware, and feeds Tab 4 / the Ext 2 fastpath burst sweep.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "io/packet_backend.hpp"
#include "ring/mpmc_ring.hpp"
#include "ring/spsc_ring.hpp"
#include "stats/cacheline.hpp"
#include "stats/histogram.hpp"
#include "telem/flight_recorder.hpp"
#include "trace/exemplar.hpp"

namespace mdp::core {

/// Per-path admission level, set by a control plane (mdp::ctrl) from the
/// caller thread. kProbeOnly admits only packets covered by probe credits
/// (grant_probe_credits); kDisabled masks the path out of dispatch.
enum class PathAdmission : std::uint8_t {
  kEnabled = 0,
  kProbeOnly,
  kDisabled,
};

struct ThreadedConfig {
  std::size_t num_paths = 2;
  std::size_t ring_capacity = 4096;
  std::size_t pool_size = 8192;
  std::size_t payload_bytes = 256;   ///< bytes the worker actually touches
  std::size_t work_iterations = 4;   ///< checksum passes per packet
  std::string policy = "jsq";        ///< "jsq" | "rr" | "hash"
  /// Ring-drain burst for workers and the collector, and the admission
  /// unit of ingress_burst (clamped to [1, kMaxBurst]). 1 = per-packet.
  std::size_t burst_size = 32;
  /// Attribute each packet's latency to ring wait / service / collection.
  /// Stage boundaries are stamped once per burst (two extra clock reads
  /// per *burst* on the worker); each packet's service sample is its
  /// attributed share (burst span / burst population), and the collector
  /// captures burst-aware exemplars (see exemplars()). Off for pure
  /// throughput benchmarking.
  bool record_stage_hist = false;
  /// Packet source/sink. Non-owning; when set, drive the plane with
  /// pump() from the caller thread. The plane start()s the backend but
  /// never stop()s it (the caller owns its lifetime, and with loopback
  /// pairs the peer endpoint usually outlives the plane).
  io::PacketBackend* backend = nullptr;
  /// Flight recorder (non-owning; must outlive the plane). When set,
  /// the plane emits one kIngressBurst event per admitted burst on the
  /// caller thread ("dp.ingress"), one kEgressBurst per drained burst
  /// on the collector thread ("dp.collector"), and kAdmissionFlip on
  /// every set_path_admission — the ext2 telem-on rows bound what this
  /// costs (~one emit per burst, amortized sub-ns/packet).
  telem::FlightRecorder* recorder = nullptr;
};

class ThreadedDataPlane {
 public:
  /// Hard cap on a single burst (ingress, worker pop, collector drain).
  static constexpr std::size_t kMaxBurst = 256;

  /// Called on the collector thread for every completed packet.
  using Completion =
      std::function<void(std::uint64_t latency_ns, std::uint16_t path)>;

  /// Called on the collector thread with every completed packet's full
  /// stage-attributed span (requires cfg.record_stage_hist). The hook for
  /// control planes that want stage evidence, not just scalars — feed
  /// ctrl::SloMonitor::observe_span here. The observer must be safe to
  /// call from the collector thread (SloMonitor's windows are).
  using SpanObserver = std::function<void(const trace::SpanRecord&)>;

  explicit ThreadedDataPlane(ThreadedConfig cfg, Completion on_complete);
  ~ThreadedDataPlane();

  ThreadedDataPlane(const ThreadedDataPlane&) = delete;
  ThreadedDataPlane& operator=(const ThreadedDataPlane&) = delete;

  /// Launch worker + collector threads (and start the backend, if any).
  void start();

  /// Install the span observer. Must be called before start() — the
  /// collector thread reads it unsynchronized.
  void set_span_observer(SpanObserver obs) { span_observer_ = std::move(obs); }

  /// Submit one packet from the caller thread. Returns false if the
  /// buffer pool or the chosen path ring is momentarily full.
  bool ingress(std::uint64_t flow_hash);

  /// Submit up to kMaxBurst packets from the caller thread in one burst:
  /// one admission timestamp, one policy state sample (JSQ samples ring
  /// occupancy once and accounts for its own intra-burst placements), and
  /// per-path bulk ring pushes. Returns the number accepted; packets that
  /// found the pool or their path ring full are rejected (counted in
  /// rejected()), not retried.
  std::size_t ingress_burst(std::span<const std::uint64_t> flow_hashes);

  /// Backend mode, caller thread only: egress completed frames back
  /// through the backend, then rx/admit up to cfg.burst_size new frames.
  /// Returns the number admitted this call. Frames the slot pool or a
  /// path ring could not absorb are returned to their packet pool and
  /// counted in rejected().
  std::size_t pump();

  /// Completed frames not yet handed back to the backend (backend mode).
  /// Zero once pump() has been called after quiesce.
  std::size_t egress_backlog() const noexcept {
    return tx_pending_.size() + (egress_ring_ ? egress_ring_->size() : 0);
  }

  /// Wait until everything in flight has drained, then stop all threads.
  void stop();

  std::uint64_t completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t submitted() const noexcept { return submitted_; }
  std::uint64_t rejected() const noexcept { return rejected_; }
  /// Packets accepted but not yet egressed. Exact once quiesced (after
  /// stop()); approximate while threads run. Zero at quiesce is the
  /// counter-equivalence invariant the burst path is validated against.
  std::uint64_t inflight() const noexcept {
    return submitted_ - completed_.load(std::memory_order_relaxed);
  }
  std::size_t burst_size() const noexcept { return cfg_.burst_size; }
  std::size_t num_paths() const noexcept { return cfg_.num_paths; }
  std::uint64_t per_path_count(std::size_t p) const noexcept {
    return path_counts_[p];
  }

  // --- control-plane actuation hooks (caller thread, like pump()) ----------
  /// Mask/unmask path `p` in the dispatch candidate set. Takes effect on
  /// the next dispatch; packets already on the path's ring complete
  /// normally. If every path ends up inadmissible, dispatch falls back to
  /// the full path set rather than blackholing traffic.
  void set_path_admission(std::size_t p, PathAdmission a) {
    admission_[p] = a;
    if (ingress_chan_)
      ingress_chan_->emit(now_ns(), telem::EventType::kAdmissionFlip,
                          static_cast<std::uint16_t>(p),
                          static_cast<std::uint32_t>(a), 0);
  }
  PathAdmission path_admission(std::size_t p) const noexcept {
    return admission_[p];
  }
  /// Allow `n` more packets onto a kProbeOnly path (probation probes).
  /// Credits are consumed one per dispatched packet; no-op effect while
  /// the path is kEnabled.
  void grant_probe_credits(std::size_t p, std::uint64_t n) {
    probe_credits_[p] += n;
  }
  std::uint64_t probe_credits(std::size_t p) const noexcept {
    return probe_credits_[p];
  }
  /// Packets dispatched to `p` and not yet collected. Caller-thread
  /// dispatch count minus the collector's atomic completion count: exact
  /// at quiesce, a live estimate (never negative-wrapped below 0 in
  /// practice: completions only trail dispatches) while running.
  std::uint64_t path_inflight(std::size_t p) const noexcept {
    const std::uint64_t done =
        path_completed_[p].v.load(std::memory_order_acquire);
    const std::uint64_t sent = path_counts_[p];
    return sent > done ? sent - done : 0;
  }

  // Stage attribution (valid when cfg.record_stage_hist; read after
  // stop() — histograms and exemplars are written by the collector
  // thread).
  /// Ingress enqueue -> worker burst pop (path ring wait).
  const stats::LatencyHistogram& queue_wait_hist() const noexcept {
    return queue_wait_hist_;
  }
  /// Attributed per-packet service: the burst's service span divided by
  /// the burst population, so a tail packet no longer claims its whole
  /// burst's span (ROADMAP "batch-aware exemplars").
  const stats::LatencyHistogram& service_hist() const noexcept {
    return service_hist_;
  }
  /// Burst work done -> collector burst pop (completion ring + merge wait).
  const stats::LatencyHistogram& merge_wait_hist() const noexcept {
    return merge_wait_hist_;
  }
  /// Burst-aware tail exemplars: each carries burst_size, burst_pos and
  /// the raw (whole-burst) service span, so attributed_service_ns() stays
  /// honest at burst_size > 1.
  const trace::ExemplarReservoir& exemplars() const noexcept {
    return exemplars_;
  }

 private:
  struct Slot {
    std::uint64_t enqueue_ns = 0;
    std::uint64_t dequeue_ns = 0;  ///< worker burst pop (stage attribution)
    std::uint64_t done_ns = 0;     ///< burst work complete (stage attribution)
    std::uint16_t path = 0;
    std::uint32_t payload_seed = 0;
    net::Packet* pkt = nullptr;    ///< backend mode: the frame in flight
    std::uint64_t seq = 0;         ///< frame anno (exemplar metadata)
    std::uint32_t flow_id = 0;
    std::uint16_t burst_n = 1;     ///< service-burst population
    std::uint16_t burst_pos = 0;   ///< this packet's position in it
  };

  bool path_candidate(std::size_t p) const noexcept;
  bool any_candidate() const noexcept;
  void note_placement(std::uint16_t path) noexcept;
  std::uint16_t pick_path(std::uint64_t flow_hash);
  /// Shared dispatch tail: place `n` slots (enqueue_ns/payload/pkt already
  /// filled) by policy, bulk-push per path, recycle what didn't fit
  /// (frames back to their pool, slots to the free ring). Returns accepted.
  std::size_t dispatch_slots(Slot* const* slots, const std::uint64_t* hashes,
                             std::size_t n);
  void reject_slot(Slot* slot);
  void worker_loop(std::size_t path);
  void collector_loop();
  static std::uint64_t now_ns();

  ThreadedConfig cfg_;
  Completion on_complete_;
  std::vector<std::unique_ptr<ring::SpscRing<Slot*>>> path_rings_;
  std::unique_ptr<ring::MpmcRing<Slot*>> done_ring_;
  std::unique_ptr<ring::MpmcRing<Slot*>> free_ring_;
  /// Backend mode: collector -> caller handoff of completed frames
  /// (capacity pool_size, so a push can never fail).
  std::unique_ptr<ring::SpscRing<Slot*>> egress_ring_;
  std::vector<net::PacketPtr> tx_pending_;  ///< frames awaiting backend tx
  std::vector<Slot> slots_;
  std::vector<std::uint8_t> work_buf_;
  std::vector<std::thread> workers_;
  std::thread collector_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> workers_done_{false};
  std::atomic<std::uint64_t> completed_{0};
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::size_t rr_next_ = 0;
  std::vector<std::uint64_t> path_counts_;
  // Control-plane state (caller thread only, mutated between bursts like
  // every other dispatch input) + the collector's per-path completion
  // counters that path_inflight() diffs against. The completion counters
  // are padded one-per-line: the collector bumps neighboring paths'
  // counters back to back, and unpadded they'd share a line with each
  // other (and the caller's reads) — the tab4 padded-vs-packed rows
  // measure exactly this layout.
  std::vector<PathAdmission> admission_;
  std::vector<std::uint64_t> probe_credits_;
  std::unique_ptr<stats::PaddedAtomicU64[]> path_completed_;
  // Flight-recorder channels (nullptr when cfg.recorder is unset):
  // ingress_chan_ is caller-thread only, egress_chan_ collector only —
  // one writer per channel, as the recorder requires.
  telem::FlightRecorder::Channel* ingress_chan_ = nullptr;
  telem::FlightRecorder::Channel* egress_chan_ = nullptr;
  // ingress_burst/pump scratch (caller thread only): per-path staging and
  // the JSQ occupancy snapshot, allocated once.
  std::vector<std::vector<Slot*>> stage_;
  std::vector<std::size_t> jsq_depths_;
  stats::LatencyHistogram queue_wait_hist_;
  stats::LatencyHistogram service_hist_;
  stats::LatencyHistogram merge_wait_hist_;
  trace::ExemplarReservoir exemplars_;  ///< collector thread only
  SpanObserver span_observer_;          ///< set before start(); collector calls
};

}  // namespace mdp::core
