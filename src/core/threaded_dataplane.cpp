#include "core/threaded_dataplane.hpp"

#include <chrono>

#include "net/checksum.hpp"

namespace mdp::core {

ThreadedDataPlane::ThreadedDataPlane(ThreadedConfig cfg,
                                     Completion on_complete)
    : cfg_(cfg),
      on_complete_(std::move(on_complete)),
      done_ring_(std::make_unique<ring::MpmcRing<Slot*>>(
          cfg.ring_capacity * cfg.num_paths)),
      free_ring_(std::make_unique<ring::MpmcRing<Slot*>>(cfg.pool_size)),
      slots_(cfg.pool_size),
      work_buf_(cfg.payload_bytes, 0xa5),
      path_counts_(cfg.num_paths, 0) {
  for (std::size_t p = 0; p < cfg_.num_paths; ++p)
    path_rings_.push_back(
        std::make_unique<ring::SpscRing<Slot*>>(cfg.ring_capacity));
  for (auto& s : slots_) free_ring_->try_push(&s);
}

ThreadedDataPlane::~ThreadedDataPlane() {
  if (!stopping_.load()) stop();
}

std::uint64_t ThreadedDataPlane::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ThreadedDataPlane::start() {
  stopping_.store(false);
  workers_done_.store(false);
  for (std::size_t p = 0; p < cfg_.num_paths; ++p)
    workers_.emplace_back([this, p] { worker_loop(p); });
  collector_ = std::thread([this] { collector_loop(); });
}

std::uint16_t ThreadedDataPlane::pick_path(std::uint64_t flow_hash) {
  if (cfg_.policy == "hash")
    return static_cast<std::uint16_t>(flow_hash % cfg_.num_paths);
  if (cfg_.policy == "rr") {
    auto p = static_cast<std::uint16_t>(rr_next_);
    rr_next_ = (rr_next_ + 1) % cfg_.num_paths;
    return p;
  }
  // jsq on ring occupancy.
  std::size_t best = 0;
  std::size_t best_size = path_rings_[0]->size();
  for (std::size_t p = 1; p < cfg_.num_paths; ++p) {
    std::size_t s = path_rings_[p]->size();
    if (s < best_size) {
      best_size = s;
      best = p;
    }
  }
  return static_cast<std::uint16_t>(best);
}

bool ThreadedDataPlane::ingress(std::uint64_t flow_hash) {
  Slot* slot = nullptr;
  if (!free_ring_->try_pop(slot)) {
    ++rejected_;
    return false;
  }
  slot->enqueue_ns = now_ns();
  slot->path = pick_path(flow_hash);
  slot->payload_seed = static_cast<std::uint32_t>(flow_hash);
  if (!path_rings_[slot->path]->try_push(slot)) {
    free_ring_->try_push(slot);
    ++rejected_;
    return false;
  }
  ++path_counts_[slot->path];
  ++submitted_;
  return true;
}

void ThreadedDataPlane::worker_loop(std::size_t path) {
  // Each worker owns a private scratch copy so the checksum work doesn't
  // false-share.
  std::vector<std::uint8_t> buf = work_buf_;
  auto& ring = *path_rings_[path];
  while (true) {
    Slot* slot = nullptr;
    if (!ring.try_pop(slot)) {
      if (stopping_.load(std::memory_order_acquire) && ring.empty()) break;
      std::this_thread::yield();
      continue;
    }
    if (cfg_.record_stage_hist) slot->dequeue_ns = now_ns();
    // Real per-packet work: seed-perturbed checksum passes over the
    // payload region (memory traffic + ALU, like header parsing would).
    buf[0] = static_cast<std::uint8_t>(slot->payload_seed);
    volatile std::uint16_t sink = 0;
    for (std::size_t i = 0; i < cfg_.work_iterations; ++i) {
      sink = net::checksum(
          reinterpret_cast<const std::byte*>(buf.data()), buf.size());
      buf[1] = static_cast<std::uint8_t>(sink);
    }
    if (cfg_.record_stage_hist) slot->done_ns = now_ns();
    while (!done_ring_->try_push(slot)) std::this_thread::yield();
  }
}

void ThreadedDataPlane::collector_loop() {
  while (true) {
    Slot* slot = nullptr;
    if (!done_ring_->try_pop(slot)) {
      // Only exit once every worker has been joined (workers_done_), so no
      // completion can still be in flight between a path ring and done_ring_.
      if (workers_done_.load(std::memory_order_acquire)) break;
      std::this_thread::yield();
      continue;
    }
    std::uint64_t now = now_ns();
    std::uint64_t latency = now - slot->enqueue_ns;
    std::uint16_t path = slot->path;
    if (cfg_.record_stage_hist) {
      // Slot stamps were written by the worker before the done_ring_
      // push (release) and read after the pop (acquire) — no race.
      queue_wait_hist_.record(slot->dequeue_ns >= slot->enqueue_ns
                                  ? slot->dequeue_ns - slot->enqueue_ns
                                  : 0);
      service_hist_.record(slot->done_ns >= slot->dequeue_ns
                               ? slot->done_ns - slot->dequeue_ns
                               : 0);
      merge_wait_hist_.record(now >= slot->done_ns ? now - slot->done_ns
                                                   : 0);
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    free_ring_->try_push(slot);
    if (on_complete_) on_complete_(latency, path);
  }
}

void ThreadedDataPlane::stop() {
  stopping_.store(true, std::memory_order_release);
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_done_.store(true, std::memory_order_release);
  if (collector_.joinable()) collector_.join();
  workers_.clear();
}

}  // namespace mdp::core
