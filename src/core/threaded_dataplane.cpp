#include "core/threaded_dataplane.hpp"

#include <chrono>

#include "net/checksum.hpp"

namespace mdp::core {

ThreadedDataPlane::ThreadedDataPlane(ThreadedConfig cfg,
                                     Completion on_complete)
    : cfg_(cfg),
      on_complete_(std::move(on_complete)),
      done_ring_(std::make_unique<ring::MpmcRing<Slot*>>(
          cfg.ring_capacity * cfg.num_paths)),
      free_ring_(std::make_unique<ring::MpmcRing<Slot*>>(cfg.pool_size)),
      slots_(cfg.pool_size),
      work_buf_(cfg.payload_bytes, 0xa5),
      path_counts_(cfg.num_paths, 0),
      stage_(cfg.num_paths),
      jsq_depths_(cfg.num_paths, 0) {
  if (cfg_.burst_size == 0) cfg_.burst_size = 1;
  if (cfg_.burst_size > kMaxBurst) cfg_.burst_size = kMaxBurst;
  for (std::size_t p = 0; p < cfg_.num_paths; ++p) {
    path_rings_.push_back(
        std::make_unique<ring::SpscRing<Slot*>>(cfg.ring_capacity));
    stage_[p].reserve(kMaxBurst);
  }
  for (auto& s : slots_) free_ring_->try_push(&s);
}

ThreadedDataPlane::~ThreadedDataPlane() {
  if (!stopping_.load()) stop();
}

std::uint64_t ThreadedDataPlane::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ThreadedDataPlane::start() {
  stopping_.store(false);
  workers_done_.store(false);
  for (std::size_t p = 0; p < cfg_.num_paths; ++p)
    workers_.emplace_back([this, p] { worker_loop(p); });
  collector_ = std::thread([this] { collector_loop(); });
}

std::uint16_t ThreadedDataPlane::pick_path(std::uint64_t flow_hash) {
  if (cfg_.policy == "hash")
    return static_cast<std::uint16_t>(flow_hash % cfg_.num_paths);
  if (cfg_.policy == "rr") {
    auto p = static_cast<std::uint16_t>(rr_next_);
    rr_next_ = (rr_next_ + 1) % cfg_.num_paths;
    return p;
  }
  // jsq on ring occupancy.
  std::size_t best = 0;
  std::size_t best_size = path_rings_[0]->size();
  for (std::size_t p = 1; p < cfg_.num_paths; ++p) {
    std::size_t s = path_rings_[p]->size();
    if (s < best_size) {
      best_size = s;
      best = p;
    }
  }
  return static_cast<std::uint16_t>(best);
}

bool ThreadedDataPlane::ingress(std::uint64_t flow_hash) {
  Slot* slot = nullptr;
  if (!free_ring_->try_pop(slot)) {
    ++rejected_;
    return false;
  }
  slot->enqueue_ns = now_ns();
  slot->path = pick_path(flow_hash);
  slot->payload_seed = static_cast<std::uint32_t>(flow_hash);
  if (!path_rings_[slot->path]->try_push(slot)) {
    free_ring_->try_push(slot);
    ++rejected_;
    return false;
  }
  ++path_counts_[slot->path];
  ++submitted_;
  return true;
}

std::size_t ThreadedDataPlane::ingress_burst(
    std::span<const std::uint64_t> flow_hashes) {
  const std::size_t want =
      flow_hashes.size() < kMaxBurst ? flow_hashes.size() : kMaxBurst;
  if (want == 0) return 0;

  Slot* acquired[kMaxBurst];
  const std::size_t got =
      free_ring_->try_pop_burst(std::span<Slot*>(acquired, want));
  rejected_ += want - got;
  if (got == 0) return 0;

  // Per-burst bookkeeping amortization: one admission stamp and (for JSQ)
  // one ring-occupancy sample for the whole burst. Intra-burst placements
  // are accounted locally so the burst still spreads.
  const std::uint64_t admit_ns = now_ns();
  const bool jsq = cfg_.policy != "hash" && cfg_.policy != "rr";
  if (jsq)
    for (std::size_t p = 0; p < cfg_.num_paths; ++p)
      jsq_depths_[p] = path_rings_[p]->size();

  for (auto& staged : stage_) staged.clear();
  for (std::size_t i = 0; i < got; ++i) {
    const std::uint64_t hash = flow_hashes[i];
    std::uint16_t path;
    if (jsq) {
      std::size_t best = 0;
      for (std::size_t p = 1; p < cfg_.num_paths; ++p)
        if (jsq_depths_[p] < jsq_depths_[best]) best = p;
      ++jsq_depths_[best];
      path = static_cast<std::uint16_t>(best);
    } else {
      path = pick_path(hash);
    }
    Slot* slot = acquired[i];
    slot->enqueue_ns = admit_ns;
    slot->path = path;
    slot->payload_seed = static_cast<std::uint32_t>(hash);
    stage_[path].push_back(slot);
  }

  std::size_t accepted = 0;
  for (std::size_t p = 0; p < cfg_.num_paths; ++p) {
    auto& staged = stage_[p];
    if (staged.empty()) continue;
    const std::size_t pushed = path_rings_[p]->try_push_burst(
        std::span<Slot*>(staged.data(), staged.size()));
    path_counts_[p] += pushed;
    accepted += pushed;
    // Ring full mid-burst: recycle the tail and count it rejected.
    const std::size_t leftover = staged.size() - pushed;
    if (leftover > 0) {
      std::size_t back = 0;
      while (back < leftover)
        back += free_ring_->try_push_burst(
            std::span<Slot*>(staged.data() + pushed + back, leftover - back));
      rejected_ += leftover;
    }
  }
  submitted_ += accepted;
  return accepted;
}

void ThreadedDataPlane::worker_loop(std::size_t path) {
  // Each worker owns a private scratch copy so the checksum work doesn't
  // false-share.
  std::vector<std::uint8_t> buf = work_buf_;
  auto& ring = *path_rings_[path];
  Slot* burst[kMaxBurst];
  const std::size_t burst_cap = cfg_.burst_size;
  while (true) {
    const std::size_t n =
        ring.try_pop_burst(std::span<Slot*>(burst, burst_cap));
    if (n == 0) {
      if (stopping_.load(std::memory_order_acquire) && ring.empty()) break;
      std::this_thread::yield();
      continue;
    }
    if (cfg_.record_stage_hist) {
      const std::uint64_t t = now_ns();
      for (std::size_t i = 0; i < n; ++i) burst[i]->dequeue_ns = t;
    }
    for (std::size_t i = 0; i < n; ++i) {
      // Real per-packet work: seed-perturbed checksum passes over the
      // payload region (memory traffic + ALU, like header parsing would).
      buf[0] = static_cast<std::uint8_t>(burst[i]->payload_seed);
      volatile std::uint16_t sink = 0;
      for (std::size_t k = 0; k < cfg_.work_iterations; ++k) {
        sink = net::checksum(
            reinterpret_cast<const std::byte*>(buf.data()), buf.size());
        buf[1] = static_cast<std::uint8_t>(sink);
      }
    }
    if (cfg_.record_stage_hist) {
      const std::uint64_t t = now_ns();
      for (std::size_t i = 0; i < n; ++i) burst[i]->done_ns = t;
    }
    std::size_t pushed = 0;
    while (pushed < n) {
      pushed += done_ring_->try_push_burst(
          std::span<Slot*>(burst + pushed, n - pushed));
      if (pushed < n) std::this_thread::yield();
    }
  }
}

void ThreadedDataPlane::collector_loop() {
  Slot* burst[kMaxBurst];
  const std::size_t burst_cap = cfg_.burst_size;
  while (true) {
    const std::size_t n =
        done_ring_->try_pop_burst(std::span<Slot*>(burst, burst_cap));
    if (n == 0) {
      // Only exit once every worker has been joined (workers_done_), so no
      // completion can still be in flight between a path ring and done_ring_.
      if (workers_done_.load(std::memory_order_acquire)) break;
      std::this_thread::yield();
      continue;
    }
    // One clock read per drained burst; slot stamps were written by the
    // worker before the done_ring_ push (release) and read after the pop
    // (acquire) — no race.
    const std::uint64_t now = now_ns();
    for (std::size_t i = 0; i < n; ++i) {
      Slot* slot = burst[i];
      const std::uint64_t latency = now - slot->enqueue_ns;
      if (cfg_.record_stage_hist) {
        queue_wait_hist_.record(slot->dequeue_ns >= slot->enqueue_ns
                                    ? slot->dequeue_ns - slot->enqueue_ns
                                    : 0);
        service_hist_.record(slot->done_ns >= slot->dequeue_ns
                                 ? slot->done_ns - slot->dequeue_ns
                                 : 0);
        merge_wait_hist_.record(now >= slot->done_ns ? now - slot->done_ns
                                                     : 0);
      }
      if (on_complete_) on_complete_(latency, slot->path);
    }
    completed_.fetch_add(n, std::memory_order_relaxed);
    std::size_t back = 0;
    while (back < n)
      back += free_ring_->try_push_burst(
          std::span<Slot*>(burst + back, n - back));
  }
}

void ThreadedDataPlane::stop() {
  stopping_.store(true, std::memory_order_release);
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_done_.store(true, std::memory_order_release);
  if (collector_.joinable()) collector_.join();
  workers_.clear();
}

}  // namespace mdp::core
