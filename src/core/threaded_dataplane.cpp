#include "core/threaded_dataplane.hpp"

#include <chrono>
#include <cstdio>

#include "net/checksum.hpp"

namespace mdp::core {

ThreadedDataPlane::ThreadedDataPlane(ThreadedConfig cfg,
                                     Completion on_complete)
    : cfg_(cfg),
      on_complete_(std::move(on_complete)),
      done_ring_(std::make_unique<ring::MpmcRing<Slot*>>(
          cfg.ring_capacity * cfg.num_paths)),
      free_ring_(std::make_unique<ring::MpmcRing<Slot*>>(cfg.pool_size)),
      slots_(cfg.pool_size),
      work_buf_(cfg.payload_bytes, 0xa5),
      path_counts_(cfg.num_paths, 0),
      admission_(cfg.num_paths, PathAdmission::kEnabled),
      probe_credits_(cfg.num_paths, 0),
      path_completed_(new stats::PaddedAtomicU64[cfg.num_paths]),
      stage_(cfg.num_paths),
      jsq_depths_(cfg.num_paths, 0) {
  for (std::size_t p = 0; p < cfg.num_paths; ++p)
    path_completed_[p].v.store(0, std::memory_order_relaxed);
  if (cfg_.recorder) {
    ingress_chan_ = cfg_.recorder->channel("dp.ingress");
    egress_chan_ = cfg_.recorder->channel("dp.collector");
  }
  if (cfg_.burst_size == 0) cfg_.burst_size = 1;
  if (cfg_.burst_size > kMaxBurst) cfg_.burst_size = kMaxBurst;
  for (std::size_t p = 0; p < cfg_.num_paths; ++p) {
    path_rings_.push_back(
        std::make_unique<ring::SpscRing<Slot*>>(cfg.ring_capacity));
    stage_[p].reserve(kMaxBurst);
  }
  for (auto& s : slots_) free_ring_->try_push(&s);
  if (cfg_.backend) {
    // Sized to the slot population: a collector push can never fail.
    egress_ring_ =
        std::make_unique<ring::SpscRing<Slot*>>(cfg_.pool_size);
    tx_pending_.reserve(kMaxBurst);
  }
}

ThreadedDataPlane::~ThreadedDataPlane() {
  if (!stopping_.load()) stop();
}

std::uint64_t ThreadedDataPlane::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ThreadedDataPlane::start() {
  if (cfg_.backend) {
    std::string err;
    if (!cfg_.backend->start(&err)) {
      std::fprintf(stderr, "ThreadedDataPlane: backend '%s' failed: %s\n",
                   cfg_.backend->caps().name.c_str(), err.c_str());
      return;
    }
  }
  stopping_.store(false);
  workers_done_.store(false);
  for (std::size_t p = 0; p < cfg_.num_paths; ++p)
    workers_.emplace_back([this, p] { worker_loop(p); });
  collector_ = std::thread([this] { collector_loop(); });
}

bool ThreadedDataPlane::path_candidate(std::size_t p) const noexcept {
  switch (admission_[p]) {
    case PathAdmission::kEnabled: return true;
    case PathAdmission::kProbeOnly: return probe_credits_[p] > 0;
    case PathAdmission::kDisabled: return false;
  }
  return false;
}

bool ThreadedDataPlane::any_candidate() const noexcept {
  for (std::size_t p = 0; p < cfg_.num_paths; ++p)
    if (path_candidate(p)) return true;
  return false;
}

void ThreadedDataPlane::note_placement(std::uint16_t path) noexcept {
  if (admission_[path] == PathAdmission::kProbeOnly &&
      probe_credits_[path] > 0)
    --probe_credits_[path];
}

std::uint16_t ThreadedDataPlane::pick_path(std::uint64_t flow_hash) {
  // If the control plane masked everything, serve from the full set
  // rather than blackholing traffic (the controller's capacity guard
  // should prevent this; belt and braces).
  const bool have_candidates = any_candidate();
  const auto ok = [&](std::size_t p) {
    return !have_candidates || path_candidate(p);
  };
  if (cfg_.policy == "hash") {
    const auto start = static_cast<std::size_t>(flow_hash % cfg_.num_paths);
    for (std::size_t i = 0; i < cfg_.num_paths; ++i) {
      const std::size_t p = (start + i) % cfg_.num_paths;
      if (ok(p)) return static_cast<std::uint16_t>(p);
    }
    return static_cast<std::uint16_t>(start);
  }
  if (cfg_.policy == "rr") {
    for (std::size_t i = 0; i < cfg_.num_paths; ++i) {
      const std::size_t p = (rr_next_ + i) % cfg_.num_paths;
      if (ok(p)) {
        rr_next_ = (p + 1) % cfg_.num_paths;
        return static_cast<std::uint16_t>(p);
      }
    }
    return static_cast<std::uint16_t>(rr_next_);
  }
  // jsq on ring occupancy, over the admissible set.
  std::size_t best = cfg_.num_paths;
  std::size_t best_size = 0;
  for (std::size_t p = 0; p < cfg_.num_paths; ++p) {
    if (!ok(p)) continue;
    const std::size_t s = path_rings_[p]->size();
    if (best == cfg_.num_paths || s < best_size) {
      best_size = s;
      best = p;
    }
  }
  return static_cast<std::uint16_t>(best == cfg_.num_paths ? 0 : best);
}

bool ThreadedDataPlane::ingress(std::uint64_t flow_hash) {
  Slot* slot = nullptr;
  if (!free_ring_->try_pop(slot)) {
    ++rejected_;
    return false;
  }
  slot->enqueue_ns = now_ns();
  slot->path = pick_path(flow_hash);
  note_placement(slot->path);
  slot->payload_seed = static_cast<std::uint32_t>(flow_hash);
  slot->flow_id = slot->payload_seed;
  slot->seq = 0;
  slot->pkt = nullptr;
  if (!path_rings_[slot->path]->try_push(slot)) {
    free_ring_->try_push(slot);
    ++rejected_;
    return false;
  }
  ++path_counts_[slot->path];
  ++submitted_;
  return true;
}

void ThreadedDataPlane::reject_slot(Slot* slot) {
  if (slot->pkt) {
    net::PacketPtr(slot->pkt).reset();  // back to its packet pool
    slot->pkt = nullptr;
  }
  while (!free_ring_->try_push(slot)) {
  }
  ++rejected_;
}

std::size_t ThreadedDataPlane::dispatch_slots(Slot* const* slots,
                                              const std::uint64_t* hashes,
                                              std::size_t n) {
  // Per-burst bookkeeping amortization: one policy state sample (for JSQ:
  // one ring-occupancy snapshot) for the whole burst. Intra-burst
  // placements are accounted locally so the burst still spreads.
  const bool jsq = cfg_.policy != "hash" && cfg_.policy != "rr";
  if (jsq)
    for (std::size_t p = 0; p < cfg_.num_paths; ++p)
      jsq_depths_[p] = path_rings_[p]->size();

  for (auto& staged : stage_) staged.clear();
  for (std::size_t i = 0; i < n; ++i) {
    std::uint16_t path;
    if (jsq) {
      // Admission is re-checked per packet: a probe-only path drops out
      // of the candidate set the moment its credits drain mid-burst.
      const bool have_candidates = any_candidate();
      std::size_t best = cfg_.num_paths;
      for (std::size_t p = 0; p < cfg_.num_paths; ++p) {
        if (have_candidates && !path_candidate(p)) continue;
        if (best == cfg_.num_paths || jsq_depths_[p] < jsq_depths_[best])
          best = p;
      }
      if (best == cfg_.num_paths) best = 0;
      ++jsq_depths_[best];
      path = static_cast<std::uint16_t>(best);
    } else {
      path = pick_path(hashes[i]);
    }
    note_placement(path);
    slots[i]->path = path;
    stage_[path].push_back(slots[i]);
  }

  std::size_t accepted = 0;
  for (std::size_t p = 0; p < cfg_.num_paths; ++p) {
    auto& staged = stage_[p];
    if (staged.empty()) continue;
    const std::size_t pushed = path_rings_[p]->try_push_burst(
        std::span<Slot*>(staged.data(), staged.size()));
    path_counts_[p] += pushed;
    accepted += pushed;
    // Ring full mid-burst: recycle the tail and count it rejected.
    for (std::size_t i = pushed; i < staged.size(); ++i)
      reject_slot(staged[i]);
  }
  submitted_ += accepted;
  return accepted;
}

std::size_t ThreadedDataPlane::ingress_burst(
    std::span<const std::uint64_t> flow_hashes) {
  const std::size_t want =
      flow_hashes.size() < kMaxBurst ? flow_hashes.size() : kMaxBurst;
  if (want == 0) return 0;

  Slot* acquired[kMaxBurst];
  const std::size_t got =
      free_ring_->try_pop_burst(std::span<Slot*>(acquired, want));
  rejected_ += want - got;
  if (got == 0) return 0;

  // One admission stamp for the whole burst.
  const std::uint64_t admit_ns = now_ns();
  for (std::size_t i = 0; i < got; ++i) {
    Slot* slot = acquired[i];
    slot->enqueue_ns = admit_ns;
    slot->payload_seed = static_cast<std::uint32_t>(flow_hashes[i]);
    slot->flow_id = slot->payload_seed;
    slot->seq = 0;
    slot->pkt = nullptr;
  }
  const std::size_t accepted = dispatch_slots(acquired, flow_hashes.data(), got);
  // One recorder event per burst (not per packet): the admission stamp,
  // the accepted count, and the running submit total.
  if (ingress_chan_ && accepted)
    ingress_chan_->emit(admit_ns, telem::EventType::kIngressBurst,
                        telem::kAllPaths,
                        static_cast<std::uint32_t>(accepted), submitted_);
  return accepted;
}

std::size_t ThreadedDataPlane::pump() {
  io::PacketBackend* backend = cfg_.backend;
  if (!backend) return 0;

  // 1. Collector -> backend egress: detach completed frames from their
  //    slots (slots go straight back to the free ring), then hand as many
  //    as the backend will take. Unconsumed frames wait in tx_pending_.
  Slot* done[kMaxBurst];
  std::size_t drained;
  while ((drained = egress_ring_->try_pop_burst(
              std::span<Slot*>(done, kMaxBurst))) > 0) {
    for (std::size_t i = 0; i < drained; ++i) {
      // Stamp the internal path that served the frame: downstream fault
      // lanes and per-path telemetry key on anno().path_id, which is how
      // the controller's observations attribute back to our paths.
      done[i]->pkt->anno().path_id = done[i]->path;
      tx_pending_.emplace_back(done[i]->pkt);
      done[i]->pkt = nullptr;
    }
    std::size_t back = 0;
    while (back < drained)
      back += free_ring_->try_push_burst(
          std::span<Slot*>(done + back, drained - back));
  }
  if (!tx_pending_.empty()) {
    const std::size_t sent = backend->tx_burst(
        std::span<net::PacketPtr>(tx_pending_.data(), tx_pending_.size()));
    tx_pending_.erase(tx_pending_.begin(),
                      tx_pending_.begin() + static_cast<long>(sent));
  }

  // 2. Backend -> dispatch ingress: one rx burst, one admission stamp.
  net::PacketPtr rx_buf[kMaxBurst];
  const std::size_t want = cfg_.burst_size;
  const std::size_t got =
      backend->rx_burst(std::span<net::PacketPtr>(rx_buf, want));
  if (got == 0) return 0;

  Slot* acquired[kMaxBurst];
  const std::size_t slots =
      free_ring_->try_pop_burst(std::span<Slot*>(acquired, got));
  // Frames the slot pool cannot absorb right now go back to their pool.
  for (std::size_t i = slots; i < got; ++i) {
    rx_buf[i].reset();
    ++rejected_;
  }
  if (slots == 0) return 0;

  const std::uint64_t admit_ns = now_ns();
  std::uint64_t hashes[kMaxBurst];
  for (std::size_t i = 0; i < slots; ++i) {
    Slot* slot = acquired[i];
    const auto& a = rx_buf[i]->anno();
    hashes[i] = a.flow_hash;
    slot->enqueue_ns = admit_ns;
    slot->payload_seed = static_cast<std::uint32_t>(a.flow_hash);
    slot->flow_id = a.flow_id;
    slot->seq = a.seq;
    slot->pkt = rx_buf[i].release();
  }
  const std::size_t accepted = dispatch_slots(acquired, hashes, slots);
  if (ingress_chan_ && accepted)
    ingress_chan_->emit(admit_ns, telem::EventType::kIngressBurst,
                        telem::kAllPaths,
                        static_cast<std::uint32_t>(accepted), submitted_);
  return accepted;
}

void ThreadedDataPlane::worker_loop(std::size_t path) {
  // Each worker owns a private scratch copy so the checksum work doesn't
  // false-share.
  std::vector<std::uint8_t> buf = work_buf_;
  auto& ring = *path_rings_[path];
  Slot* burst[kMaxBurst];
  const std::size_t burst_cap = cfg_.burst_size;
  while (true) {
    const std::size_t n =
        ring.try_pop_burst(std::span<Slot*>(burst, burst_cap));
    if (n == 0) {
      if (stopping_.load(std::memory_order_acquire) && ring.empty()) break;
      std::this_thread::yield();
      continue;
    }
    if (cfg_.record_stage_hist) {
      const std::uint64_t t = now_ns();
      for (std::size_t i = 0; i < n; ++i) {
        burst[i]->dequeue_ns = t;
        burst[i]->burst_n = static_cast<std::uint16_t>(n);
        burst[i]->burst_pos = static_cast<std::uint16_t>(i);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      volatile std::uint16_t sink = 0;
      if (burst[i]->pkt) {
        // Real frame: checksum passes over the actual frame bytes,
        // read-only so the payload round-trips bit-exact.
        const auto payload = burst[i]->pkt->payload();
        for (std::size_t k = 0; k < cfg_.work_iterations; ++k)
          sink = static_cast<std::uint16_t>(
              net::checksum(payload.data(), payload.size()) + sink);
      } else {
        // Synthetic mode: seed-perturbed checksum passes over the scratch
        // payload region (memory traffic + ALU, like header parsing).
        buf[0] = static_cast<std::uint8_t>(burst[i]->payload_seed);
        for (std::size_t k = 0; k < cfg_.work_iterations; ++k) {
          sink = net::checksum(
              reinterpret_cast<const std::byte*>(buf.data()), buf.size());
          buf[1] = static_cast<std::uint8_t>(sink);
        }
      }
    }
    if (cfg_.record_stage_hist) {
      const std::uint64_t t = now_ns();
      for (std::size_t i = 0; i < n; ++i) burst[i]->done_ns = t;
    }
    std::size_t pushed = 0;
    while (pushed < n) {
      pushed += done_ring_->try_push_burst(
          std::span<Slot*>(burst + pushed, n - pushed));
      if (pushed < n) std::this_thread::yield();
    }
  }
}

void ThreadedDataPlane::collector_loop() {
  Slot* burst[kMaxBurst];
  Slot* recycle[kMaxBurst];
  const std::size_t burst_cap = cfg_.burst_size;
  while (true) {
    const std::size_t n =
        done_ring_->try_pop_burst(std::span<Slot*>(burst, burst_cap));
    if (n == 0) {
      // Only exit once every worker has been joined (workers_done_), so no
      // completion can still be in flight between a path ring and done_ring_.
      if (workers_done_.load(std::memory_order_acquire)) break;
      std::this_thread::yield();
      continue;
    }
    // One clock read per drained burst; slot stamps were written by the
    // worker before the done_ring_ push (release) and read after the pop
    // (acquire) — no race.
    const std::uint64_t now = now_ns();
    std::size_t num_recycle = 0;
    for (std::size_t i = 0; i < n; ++i) {
      Slot* slot = burst[i];
      const std::uint64_t latency = now - slot->enqueue_ns;
      if (cfg_.record_stage_hist) {
        const std::uint64_t service_span = slot->done_ns >= slot->dequeue_ns
                                               ? slot->done_ns - slot->dequeue_ns
                                               : 0;
        const std::uint16_t burst_n = slot->burst_n ? slot->burst_n : 1;
        queue_wait_hist_.record(slot->dequeue_ns >= slot->enqueue_ns
                                    ? slot->dequeue_ns - slot->enqueue_ns
                                    : 0);
        // Attributed share: the burst's span divided over its members,
        // not the whole span per member (batch-aware attribution).
        service_hist_.record(service_span / burst_n);
        merge_wait_hist_.record(now >= slot->done_ns ? now - slot->done_ns
                                                     : 0);
        trace::SpanRecord sp;
        sp.ingress_ns = slot->enqueue_ns;
        sp.dispatch_ns = slot->enqueue_ns;
        sp.service_start_ns = slot->dequeue_ns;
        sp.service_end_ns = slot->done_ns;
        sp.chain_done_ns = slot->done_ns;
        sp.merge_ns = now;
        sp.egress_ns = now;
        sp.flow_id = slot->flow_id;
        sp.seq = slot->seq;
        sp.path_id = slot->path;
        sp.burst_size = burst_n;
        sp.burst_pos = slot->burst_pos;
        sp.active = true;
        exemplars_.offer(sp);
        if (span_observer_) span_observer_(sp);
      }
      if (on_complete_) on_complete_(latency, slot->path);
      path_completed_[slot->path].v.fetch_add(1, std::memory_order_release);
      if (slot->pkt) {
        // Frame completions travel to the caller thread, which owns all
        // backend/pool interaction; egress_ring_ is slot-pool sized so
        // this push cannot fail.
        while (!egress_ring_->try_push(slot)) {
        }
      } else {
        recycle[num_recycle++] = slot;
      }
    }
    completed_.fetch_add(n, std::memory_order_relaxed);
    if (egress_chan_)
      egress_chan_->emit(now, telem::EventType::kEgressBurst,
                         telem::kAllPaths, static_cast<std::uint32_t>(n),
                         completed_.load(std::memory_order_relaxed));
    std::size_t back = 0;
    while (back < num_recycle)
      back += free_ring_->try_push_burst(
          std::span<Slot*>(recycle + back, num_recycle - back));
  }
}

void ThreadedDataPlane::stop() {
  stopping_.store(true, std::memory_order_release);
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_done_.store(true, std::memory_order_release);
  if (collector_.joinable()) collector_.join();
  workers_.clear();
  if (cfg_.backend && egress_ring_) {
    // Final egress pass on the caller thread: offer what remains to the
    // backend once, then return anything it refuses to its packet pool.
    // The backend itself stays up — the caller owns its lifetime.
    Slot* done = nullptr;
    while (egress_ring_->try_pop(done)) {
      done->pkt->anno().path_id = done->path;
      tx_pending_.emplace_back(done->pkt);
      done->pkt = nullptr;
      while (!free_ring_->try_push(done)) {
      }
    }
    if (!tx_pending_.empty()) {
      cfg_.backend->tx_burst(std::span<net::PacketPtr>(
          tx_pending_.data(), tx_pending_.size()));
      tx_pending_.clear();  // unconsumed handles recycle on destruction
    }
  }
}

}  // namespace mdp::core
