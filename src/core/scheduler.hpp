// Multipath schedulers: the policy layer of the multipath data plane.
//
// Given a packet and a view of path state (PathContext), a scheduler
// returns the set of paths that should carry copies of the packet
// (usually one; >1 for redundancy). The headline AdaptiveMdp policy
// combines three mechanisms:
//   1. replicate latency-critical packets to the 2 least-backlogged paths
//   2. flowlet-consistent JSQ for everything else (bounded reordering)
//   3. hedge: if a single-copy packet hasn't egressed within a budget,
//      issue a late copy on the current best alternate path
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace mdp::core {

/// Read-only view of path state exposed to policies. Implemented by the
/// data plane; test doubles implement it directly.
class PathContext {
 public:
  virtual ~PathContext() = default;
  virtual std::size_t num_paths() const = 0;
  virtual bool up(std::size_t path) const = 0;
  /// Outstanding work on the path's core (queued + in-service remainder).
  virtual sim::TimeNs backlog_ns(std::size_t path) const = 0;
  virtual std::size_t queue_depth(std::size_t path) const = 0;
  virtual std::uint64_t inflight(std::size_t path) const = 0;
  virtual double ewma_latency_ns(std::size_t path) const = 0;
  virtual sim::TimeNs now() const = 0;
};

using PathVec = std::vector<std::uint16_t>;

/// Snapshot of a PathContext taken once at burst start, with local deltas
/// for the burst's own dispatches. Batch policies read path state through
/// this instead of re-querying the live context per packet — one state
/// sample per burst — and call note_dispatch() after each placement so the
/// burst still spreads instead of dog-piling the momentary best path.
/// With a single-packet burst the snapshot equals the live context, so
/// batch selection degenerates to per-packet selection exactly.
class BatchPathContext final : public PathContext {
 public:
  explicit BatchPathContext(const PathContext& live);

  /// Account a dispatch of estimated cost `est_cost_ns` onto `path`.
  void note_dispatch(std::uint16_t path, sim::TimeNs est_cost_ns) {
    backlog_[path] += est_cost_ns;
    ++depth_[path];
    ++inflight_[path];
  }

  /// Per-dispatch backlog estimate derived from the snapshot (mean
  /// backlog per queued item; 1 µs nominal when queues are empty).
  sim::TimeNs est_dispatch_cost_ns() const noexcept { return est_cost_ns_; }

  // --- PathContext (snapshot + local deltas) -------------------------------
  std::size_t num_paths() const override { return up_.size(); }
  bool up(std::size_t path) const override { return up_[path] != 0; }
  sim::TimeNs backlog_ns(std::size_t path) const override {
    return backlog_[path];
  }
  std::size_t queue_depth(std::size_t path) const override {
    return depth_[path];
  }
  std::uint64_t inflight(std::size_t path) const override {
    return inflight_[path];
  }
  double ewma_latency_ns(std::size_t path) const override {
    return ewma_[path];
  }
  sim::TimeNs now() const override { return now_; }

 private:
  std::vector<std::uint8_t> up_;
  std::vector<sim::TimeNs> backlog_;
  std::vector<std::size_t> depth_;
  std::vector<std::uint64_t> inflight_;
  std::vector<double> ewma_;
  sim::TimeNs now_;
  sim::TimeNs est_cost_ns_;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;

  /// Choose >= 1 distinct up paths for this packet's copies. `out` is
  /// cleared by the caller. Must never return a down path when any up
  /// path exists.
  virtual void select(const net::Packet& pkt, const PathContext& ctx,
                      sim::Rng& rng, PathVec& out) = 0;

  /// Batch entry point: choose paths for a whole burst in one call.
  /// `out` is resized to pkts.size(); out[i] receives packet i's paths.
  /// The default loops select() per packet — bit-identical to the scalar
  /// path. Load-aware policies (JSQ, adaptive) override it to sample path
  /// state once per burst and track their own dispatches locally via
  /// BatchPathContext, amortizing the state query across the burst.
  virtual void select_batch(std::span<const net::Packet* const> pkts,
                            const PathContext& ctx, sim::Rng& rng,
                            std::vector<PathVec>& out);

  /// Hedge budget for a packet dispatched as a single copy; 0 disables.
  virtual sim::TimeNs hedge_timeout_ns(const net::Packet& pkt,
                                       const PathContext& ctx) const {
    (void)pkt;
    (void)ctx;
    return 0;
  }

  /// Completion feedback (for learning policies).
  virtual void on_complete(std::uint16_t path, sim::TimeNs latency_ns) {
    (void)path;
    (void)latency_ns;
  }

  /// Control-plane actuation: set the replication factor at runtime
  /// (ctrl::AdaptiveHedger). Returns false when the policy does not
  /// replicate (the default); replicating policies clamp and apply.
  virtual bool set_replication(std::size_t replicas) {
    (void)replicas;
    return false;
  }

  /// Control-plane actuation: pin the hedge-fire deadline at runtime
  /// (ctrl::HedgeTimeoutController). Returns false when the policy does
  /// not hedge (the default); hedging policies apply it as a fixed
  /// override of whatever budget they would otherwise compute. 0 restores
  /// the policy's own behavior.
  virtual bool set_hedge_timeout_ns(sim::TimeNs timeout_ns) {
    (void)timeout_ns;
    return false;
  }
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

// --- helpers shared by policies ------------------------------------------------

/// First up path (or 0 if none).
std::uint16_t first_up_path(const PathContext& ctx);
/// Up path with the minimum backlog; ties break to the lowest id.
std::uint16_t least_backlog_path(const PathContext& ctx);
/// The k distinct up paths with the smallest backlogs (ascending).
void k_least_backlog_paths(const PathContext& ctx, std::size_t k,
                           PathVec& out);

// --- concrete policies ----------------------------------------------------------

/// Everything on one pinned path: the status quo last mile.
class SinglePathScheduler final : public Scheduler {
 public:
  explicit SinglePathScheduler(std::uint16_t pinned = 0) : pinned_(pinned) {}
  std::string name() const override { return "single"; }
  void select(const net::Packet&, const PathContext& ctx, sim::Rng&,
              PathVec& out) override;

 private:
  std::uint16_t pinned_;
};

/// RSS: static flow-hash spreading (per-flow pinning, no load awareness).
class RssHashScheduler final : public Scheduler {
 public:
  std::string name() const override { return "rss"; }
  void select(const net::Packet& pkt, const PathContext& ctx, sim::Rng&,
              PathVec& out) override;

  /// Per-flow ECMP with a straggler rescue: a fixed hedge deadline makes
  /// "rss:<timeout_ns>" the canonical packet-hedge baseline for the FCT
  /// benches (the flow stays pinned; only stragglers get a second copy).
  bool set_hedge_timeout_ns(sim::TimeNs timeout_ns) override {
    hedge_timeout_ns_ = timeout_ns;
    return true;
  }
  sim::TimeNs hedge_timeout_ns(const net::Packet&,
                               const PathContext&) const override {
    return hedge_timeout_ns_;
  }

 private:
  sim::TimeNs hedge_timeout_ns_ = 0;
};

/// Packet-level round robin (load-oblivious spraying; max reordering).
class RoundRobinScheduler final : public Scheduler {
 public:
  std::string name() const override { return "rr"; }
  void select(const net::Packet&, const PathContext& ctx, sim::Rng&,
              PathVec& out) override;

 private:
  std::size_t next_ = 0;
};

/// Join-shortest-queue by backlog (per-packet, load-aware).
class JsqScheduler final : public Scheduler {
 public:
  std::string name() const override { return "jsq"; }
  void select(const net::Packet&, const PathContext& ctx, sim::Rng&,
              PathVec& out) override;
  /// One backlog sample per burst; each pick charges an estimated
  /// dispatch cost onto its path so the burst spreads across queues.
  void select_batch(std::span<const net::Packet* const> pkts,
                    const PathContext& ctx, sim::Rng& rng,
                    std::vector<PathVec>& out) override;
};

/// Least-EWMA-latency with epsilon-greedy probing (latency-aware; learns
/// asymmetric path speeds that backlog alone cannot see).
class LeastLatencyScheduler final : public Scheduler {
 public:
  explicit LeastLatencyScheduler(double epsilon = 0.05)
      : epsilon_(epsilon) {}
  std::string name() const override { return "lla"; }
  void select(const net::Packet&, const PathContext& ctx, sim::Rng& rng,
              PathVec& out) override;

 private:
  double epsilon_;
};

/// Flowlet switching: a flow stays on its path while packet gaps are below
/// `gap_ns`; an idle gap re-routes the flowlet via JSQ. Bounds reordering
/// to flowlet boundaries.
class FlowletScheduler final : public Scheduler {
 public:
  explicit FlowletScheduler(sim::TimeNs gap_ns = 50'000) : gap_ns_(gap_ns) {}
  std::string name() const override { return "flowlet"; }
  void select(const net::Packet& pkt, const PathContext& ctx, sim::Rng&,
              PathVec& out) override;

  sim::TimeNs gap_ns() const noexcept { return gap_ns_; }
  std::uint64_t flowlet_switches() const noexcept { return switches_; }

 private:
  struct FlowletState {
    std::uint16_t path;
    sim::TimeNs last_seen_ns;
  };
  sim::TimeNs gap_ns_;
  std::unordered_map<std::uint32_t, FlowletState> table_;
  std::uint64_t switches_ = 0;
};

/// Full redundancy: every packet to the r least-backlogged paths;
/// first copy wins at the dedup stage.
class RedundantScheduler final : public Scheduler {
 public:
  explicit RedundantScheduler(std::size_t replicas = 2) : r_(replicas) {}
  std::string name() const override {
    return "red" + std::to_string(r_);
  }
  void select(const net::Packet&, const PathContext& ctx, sim::Rng&,
              PathVec& out) override;
  /// Runtime knob (ctrl::AdaptiveHedger); clamped to >= 1.
  bool set_replication(std::size_t replicas) override {
    r_ = replicas ? replicas : 1;
    return true;
  }
  std::size_t replicas() const noexcept { return r_; }

  /// Hedge budget for single-copy dispatches (only reachable at r == 1 —
  /// the data plane never hedges replicated packets). Lets the control
  /// plane run redundant:1 as "hedge instead of replicate".
  bool set_hedge_timeout_ns(sim::TimeNs timeout_ns) override {
    hedge_timeout_ns_ = timeout_ns;
    return true;
  }
  sim::TimeNs hedge_timeout_ns(const net::Packet&,
                               const PathContext&) const override {
    return hedge_timeout_ns_;
  }

 private:
  std::size_t r_;
  sim::TimeNs hedge_timeout_ns_ = 0;
};

/// The headline policy (see file comment).
struct AdaptiveMdpConfig {
  std::size_t replicate_k = 2;          ///< copies for latency-critical
  /// Load gate: replicate only while the extra copy's path has at most
  /// this much backlog. This is what makes the policy *adaptive*: at high
  /// load the spare capacity redundancy needs does not exist, so spending
  /// it on copies just moves the whole latency curve up (see Fig 9) —
  /// the gate degrades gracefully into flowlet-JSQ instead. 0 = no gate.
  sim::TimeNs replicate_backlog_cap_ns = 25'000;
  sim::TimeNs flowlet_gap_ns = 50'000;  ///< flowlet idle gap
  bool hedge_enabled = true;
  /// Fixed hedge budget; 0 => auto (hedge_ewma_factor x mean path EWMA).
  sim::TimeNs hedge_timeout_ns = 0;
  double hedge_ewma_factor = 3.0;
  sim::TimeNs hedge_min_ns = 20'000;  ///< auto-hedge floor
  /// Also replicate best-effort packets whose flow is known-small.
  std::uint32_t small_flow_bytes = 0;  ///< 0 disables size-based replication
};

class AdaptiveMdpScheduler final : public Scheduler {
 public:
  explicit AdaptiveMdpScheduler(AdaptiveMdpConfig cfg = {})
      : cfg_(cfg), flowlet_(cfg.flowlet_gap_ns) {}
  std::string name() const override { return "adaptive"; }
  void select(const net::Packet& pkt, const PathContext& ctx, sim::Rng& rng,
              PathVec& out) override;
  /// Samples path state once per burst (BatchPathContext snapshot) and
  /// runs the full per-packet policy — replication gate, flowlet table,
  /// hedging metadata — against the snapshot plus local dispatch deltas.
  void select_batch(std::span<const net::Packet* const> pkts,
                    const PathContext& ctx, sim::Rng& rng,
                    std::vector<PathVec>& out) override;
  sim::TimeNs hedge_timeout_ns(const net::Packet& pkt,
                               const PathContext& ctx) const override;
  /// Runtime knob (ctrl::AdaptiveHedger): copies for latency-critical
  /// packets; 1 degrades to flowlet-JSQ for everything.
  bool set_replication(std::size_t replicas) override {
    cfg_.replicate_k = replicas ? replicas : 1;
    return true;
  }
  /// Runtime knob (ctrl::HedgeTimeoutController): a non-zero value pins
  /// the hedge deadline, overriding the auto EWMA budget; 0 restores it.
  bool set_hedge_timeout_ns(sim::TimeNs timeout_ns) override {
    cfg_.hedge_timeout_ns = timeout_ns;
    return true;
  }

  const AdaptiveMdpConfig& config() const noexcept { return cfg_; }
  std::uint64_t replicated() const noexcept { return replicated_; }

 private:
  bool is_critical(const net::Packet& pkt) const noexcept;
  AdaptiveMdpConfig cfg_;
  FlowletScheduler flowlet_;
  std::uint64_t replicated_ = 0;
};

/// Factory: "single" | "rss" | "rr" | "jsq" | "lla" | "flowlet" |
/// "red2" | "red3" | "red4" | "adaptive", plus parameterized forms
/// "<policy>:<param>" — "redundant:3" / "red:3" (replicas),
/// "flowlet:20000" (gap ns), "single:1" (pinned path), "lla:0.1"
/// (epsilon), "adaptive:3" (replicate_k). nullptr for unknown names or
/// invalid parameters.
SchedulerPtr make_scheduler(const std::string& name);

/// Canonical policy list for evaluation sweeps.
std::vector<std::string> evaluation_policy_names();

}  // namespace mdp::core
