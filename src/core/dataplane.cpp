#include "core/dataplane.hpp"

#include <cmath>
#include <stdexcept>

#include "core/path_egress.hpp"

namespace mdp::core {

const char* dp_counter_name(DpCounter c) noexcept {
  switch (c) {
    case DpCounter::kIngress: return "ingress";
    case DpCounter::kEgress: return "egress";
    case DpCounter::kDispatched: return "dispatched";
    case DpCounter::kReplicas: return "replicas";
    case DpCounter::kFlowReplicas: return "flow_replicas";
    case DpCounter::kHedges: return "hedges";
    case DpCounter::kDupDropped: return "dup_dropped";
    case DpCounter::kQueueDrops: return "queue_drops";
    case DpCounter::kChainFiltered: return "chain_filtered";
    case DpCounter::kCount: break;
  }
  return "?";
}

MdpDataPlane::MdpDataPlane(sim::EventQueue& eq, net::PacketPool& pool,
                           DataPlaneConfig cfg, SchedulerPtr scheduler)
    : eq_(eq),
      pool_(pool),
      cfg_(cfg),
      scheduler_(std::move(scheduler)),
      router_(click::Router::Context{&eq, &pool}),
      monitor_(cfg.num_paths),
      rng_(cfg.seed),
      // Unit-mean lognormal: mu = -sigma^2/2.
      jitter_(-cfg.service_jitter_sigma * cfg.service_jitter_sigma / 2,
              cfg.service_jitter_sigma) {
  if (cfg_.num_paths == 0) throw std::invalid_argument("num_paths == 0");
  if (!scheduler_) throw std::invalid_argument("null scheduler");

  if (cfg_.flow_repl.enabled) {
    replicator_ = std::make_unique<FlowReplicator>(cfg_.flow_repl);
    // A flow dropped from the decision table no longer has a fixed copy
    // count — its later sequences fall back to per-packet accounting.
    replicator_->set_drop_callback(
        [this](std::uint32_t flow_id) { dedup_.deregister_flow(flow_id); });
    granularity_ = Granularity::kBoth;
  }

  reorder_ = std::make_unique<ReorderBuffer>(
      eq_, cfg_.reorder, [this](net::PacketPtr pkt) {
        pkt->anno().egress_ns = eq_.now();
        ++egress_count_;
        fast_counters_.inc(DpCounter::kEgress);
#if MDP_TRACE_ENABLED
        if (tracer_) {
          pkt->anno().span.egress_ns = eq_.now();
          tracer_->on_egress(pkt->anno().span);
        }
#endif
        if (egress_) egress_(std::move(pkt));
      });

  nf::ChainSpec spec = nf::ChainSpec::preset(cfg_.chain);
  std::string err;
  paths_.reserve(cfg_.num_paths);
  for (std::size_t p = 0; p < cfg_.num_paths; ++p) {
    Path path;
    path.core = std::make_unique<sim::SimCore>(
        eq_, "path" + std::to_string(p));
    auto built = nf::build_chain(router_, "path" + std::to_string(p), spec,
                                 &err);
    if (!built)
      throw std::runtime_error("chain build failed: " + err);
    path.chain_head = built->head;
    chain_cost_ns_ = built->cost_ns;

    auto pid = static_cast<std::uint16_t>(p);
    click::Element* egress_elem = router_.adopt(
        std::make_unique<PathEgress>([this, pid](net::PacketPtr pkt) {
          egress_consumed_ = true;
          on_path_complete(pid, std::move(pkt));
        }),
        "path" + std::to_string(p) + "_egress");
    if (!router_.connect(built->tail, 0, egress_elem, 0, &err))
      throw std::runtime_error("egress wiring failed: " + err);
    paths_.push_back(std::move(path));
  }
  if (!router_.initialize(&err))
    throw std::runtime_error("router init failed: " + err);

  if (cfg_.dedup_sweep_interval_ns > 0) schedule_dedup_sweep();
}

MdpDataPlane::~MdpDataPlane() = default;

void MdpDataPlane::schedule_dedup_sweep() {
  eq_.schedule_in(cfg_.dedup_sweep_interval_ns, [this] {
    dedup_.sweep(eq_.now(), cfg_.dedup_max_age_ns);
    schedule_dedup_sweep();
  });
}

sim::TimeNs MdpDataPlane::service_time(const net::Packet& pkt) {
  double base = static_cast<double>(chain_cost_ns_);
  if (cfg_.service_jitter_sigma > 0) base *= jitter_.sample(rng_);
  base += cfg_.per_byte_ns * static_cast<double>(pkt.length());
  return base < 1 ? 1 : static_cast<sim::TimeNs>(base);
}

void MdpDataPlane::ingress(net::PacketPtr pkt) {
  ++ingress_count_;
  fast_counters_.inc(DpCounter::kIngress);
  auto& a = pkt->anno();
  if (a.ingress_ns == 0) a.ingress_ns = eq_.now();
  a.seq = next_seq_[a.flow_id]++;
  ingress_bytes_ += pkt->length();

  // Flow-granularity replication first: a replicated flow's packets go
  // to its stable disjoint path set and never consult the scheduler.
  bool flow_replicated = false;
  select_buf_.clear();
  if (replicator_ && granularity_allows_flow_replica(granularity_))
    flow_replicated = replicator_->route(*pkt, *this, select_buf_);
  if (!flow_replicated) {
    select_buf_.clear();
    scheduler_->select(*pkt, *this, rng_, select_buf_);
    if (select_buf_.empty()) select_buf_.push_back(first_up_path(*this));
    // kNone means no duplication of any kind: scheduler-driven packet
    // replication is truncated to the primary copy.
    if (granularity_ == Granularity::kNone && select_buf_.size() > 1)
      select_buf_.resize(1);
  }

#if MDP_TRACE_ENABLED
  // Activate the span before cloning so every copy inherits the ingress
  // boundary and decision metadata.
  if (tracer_ && tracer_->enabled()) {
    auto& sp = a.span;
    sp.active = true;
    sp.ingress_ns = a.ingress_ns;
    sp.flow_id = a.flow_id;
    sp.seq = a.seq;
    sp.traffic_class = static_cast<std::uint8_t>(a.traffic_class);
    sp.num_copies = static_cast<std::uint8_t>(select_buf_.size());
  }
#endif

  const std::uint64_t k = Deduplicator::key(a.flow_id, a.seq);
  if (flow_replicated) {
    // Register the flow's copy count once (flow-copy dedup semantics);
    // expect_flow() uses the registry as the single source of truth as
    // long as it matches what is actually in flight this packet.
    if (select_buf_.size() > 1 && dedup_.flow_copies(a.flow_id) == 1)
      dedup_.register_flow(a.flow_id,
                           static_cast<std::uint8_t>(select_buf_.size()));
    if (dedup_.flow_copies(a.flow_id) == select_buf_.size())
      dedup_.expect_flow(a.flow_id, a.seq, eq_.now());
    else
      dedup_.expect(k, static_cast<std::uint8_t>(select_buf_.size()),
                    eq_.now());
    if (select_buf_.size() > 1)
      fast_counters_.inc(DpCounter::kFlowReplicas, select_buf_.size() - 1);
  } else {
    dedup_.expect(k, static_cast<std::uint8_t>(select_buf_.size()),
                  eq_.now());
    if (select_buf_.size() > 1)
      fast_counters_.inc(DpCounter::kReplicas, select_buf_.size() - 1);
  }

  // Hedging: single-copy packets may get a late second copy. The clone is
  // parked now (the original moves into the path job and becomes
  // inaccessible) and dispatched only if the timeout fires first.
  if (select_buf_.size() == 1 && granularity_allows_hedge(granularity_)) {
    sim::TimeNs timeout = scheduler_->hedge_timeout_ns(*pkt, *this);
    if (timeout > 0) {
      net::PacketPtr clone = pool_.clone(*pkt);
      if (clone)
        arm_hedge(k, select_buf_[0], timeout, std::move(clone));
    }
  }

  // Dispatch copies: clones first (the original is consumed last).
  for (std::size_t i = 1; i < select_buf_.size(); ++i) {
    net::PacketPtr copy = pool_.clone(*pkt);
    if (!copy) {
      dedup_.cancel_one(k);
      continue;
    }
    copy->anno().copy_index = static_cast<std::uint8_t>(i);
    copy->anno().is_replica = true;
    extra_copy_bytes_ += copy->length();
    dispatch(select_buf_[i], std::move(copy));
  }
  pkt->anno().copy_index = 0;
  pkt->anno().is_replica = false;
  dispatch(select_buf_[0], std::move(pkt));
}

void MdpDataPlane::dispatch(std::uint16_t path, net::PacketPtr pkt) {
  auto& a = pkt->anno();
  if (cfg_.path_queue_capacity > 0 &&
      paths_[path].core->queue_depth() >= cfg_.path_queue_capacity) {
    // Tail drop at the path queue: release the dedup slot so merged
    // delivery of surviving copies still works.
    dedup_.cancel_one(Deduplicator::key(a.flow_id, a.seq));
    fast_counters_.inc(DpCounter::kQueueDrops);
    return;
  }
  a.dispatch_ns = eq_.now();
  a.path_id = path;
  monitor_.on_dispatch(path);
  fast_counters_.inc(DpCounter::kDispatched);

  sim::TimeNs service = service_time(*pkt);
#if MDP_TRACE_ENABLED
  if (a.span.active) {
    a.span.dispatch_ns = a.dispatch_ns;
    a.span.path_id = path;
    a.span.hedged = a.hedged;
  }
#endif
  const std::uint64_t k = Deduplicator::key(a.flow_id, a.seq);
  bool jump_queue =
      cfg_.lc_priority &&
      a.traffic_class == net::TrafficClass::kLatencyCritical;
  paths_[path].core->submit(
      service,
      [this, path, k, service, pkt = std::move(pkt)](sim::TimeNs done_at)
          mutable {
        (void)service;
#if MDP_TRACE_ENABLED
        // The core is FIFO and non-preemptive, so service started exactly
        // `service` before completion; everything since dispatch was
        // queue wait.
        if (pkt->anno().span.active) {
          pkt->anno().span.service_start_ns = done_at - service;
          pkt->anno().span.service_end_ns = done_at;
        }
#else
        (void)done_at;
#endif
        if (!cfg_.functional_chain) {
          on_path_complete(path, std::move(pkt));
          return;
        }
        // Push through the real chain replica; PathEgress sets the flag.
        // If the chain filtered the packet (firewall deny, DPI drop), the
        // copy will never reach the merge stage — release its dedup slot.
        egress_consumed_ = false;
        paths_[path].chain_head->push(0, std::move(pkt));
        if (!egress_consumed_) {
          monitor_.on_filtered(path);
          dedup_.cancel_one(k);
          fast_counters_.inc(DpCounter::kChainFiltered);
        }
      },
      jump_queue);
}

void MdpDataPlane::on_path_complete(std::uint16_t path, net::PacketPtr pkt) {
  auto& a = pkt->anno();
  sim::TimeNs latency = eq_.now() - a.dispatch_ns;
  monitor_.on_complete(path, latency);
  scheduler_->on_complete(path, latency);

#if MDP_TRACE_ENABLED
  // In sim mode the chain traversal and merge decision are instantaneous,
  // so these boundaries coincide with service_end; a real data plane
  // would stamp measurable chain/merge time here.
  if (a.span.active) {
    a.span.chain_done_ns = eq_.now();
    a.span.merge_ns = eq_.now();
  }
#endif

  const std::uint64_t k = Deduplicator::key(a.flow_id, a.seq);
  // First completion cancels any parked hedge copy.
  if (auto it = hedge_parked_.find(k); it != hedge_parked_.end())
    hedge_parked_.erase(it);

  if (!dedup_.accept(k)) {
    fast_counters_.inc(DpCounter::kDupDropped);
    return;  // duplicate copy: recycle
  }
  reorder_->submit(std::move(pkt));
}

void MdpDataPlane::arm_hedge(std::uint64_t key, std::uint16_t original_path,
                             sim::TimeNs timeout, net::PacketPtr clone) {
  clone->anno().hedged = true;
  clone->anno().is_replica = true;
  clone->anno().copy_index = 1;
  hedge_parked_.emplace(key, std::move(clone));
  eq_.schedule_in(timeout, [this, key, original_path] {
    auto it = hedge_parked_.find(key);
    if (it == hedge_parked_.end()) return;  // original completed in time
    net::PacketPtr copy = std::move(it->second);
    hedge_parked_.erase(it);
    // Best alternate: least-backlogged up path that is not the original.
    PathVec two;
    k_least_backlog_paths(*this, 2, two);
    std::uint16_t alt = original_path;
    for (std::uint16_t cand : two) {
      if (cand != original_path) {
        alt = cand;
        break;
      }
    }
    dedup_.add_expected(key);
    fast_counters_.inc(DpCounter::kHedges);
    extra_copy_bytes_ += copy->length();
    dispatch(alt, std::move(copy));
  });
}

stats::CounterSet MdpDataPlane::counters() const {
  stats::CounterSet out = adhoc_counters_;
  for (std::size_t i = 0; i < stats::EnumCounters<DpCounter>::kSize; ++i) {
    auto c = static_cast<DpCounter>(i);
    std::uint64_t v = fast_counters_.get(c);
    if (v) out.inc(dp_counter_name(c), v);
  }
  return out;
}

void MdpDataPlane::register_stats(trace::StatsRegistry& reg) const {
  for (std::size_t i = 0; i < stats::EnumCounters<DpCounter>::kSize; ++i) {
    auto c = static_cast<DpCounter>(i);
    reg.add_counter(std::string("dp.") + dp_counter_name(c),
                    [this, c] { return fast_counters_.get(c); });
  }
  reg.add_counter_set("dp", &adhoc_counters_);

  for (std::size_t p = 0; p < paths_.size(); ++p) {
    std::string pre = "path" + std::to_string(p) + ".";
    reg.add_counter(pre + "dispatched",
                    [this, p] { return monitor_.dispatched(p); });
    reg.add_counter(pre + "completed",
                    [this, p] { return monitor_.completed(p); });
    reg.add_counter(pre + "filtered",
                    [this, p] { return monitor_.filtered(p); });
    reg.add_counter(pre + "inflight_underflows",
                    [this, p] { return monitor_.underflows(p); });
    reg.add_counter(pre + "busy_ns", [this, p] {
      return static_cast<std::uint64_t>(paths_[p].core->busy_ns());
    });
    reg.add_gauge(pre + "ewma_latency_ns",
                  [this, p] { return monitor_.ewma_latency_ns(p); });
    reg.add_gauge(pre + "max_latency_ns", [this, p] {
      return static_cast<double>(monitor_.max_latency_ns(p));
    });
    reg.add_gauge(pre + "queue_depth", [this, p] {
      return static_cast<double>(paths_[p].core->queue_depth());
    });
    reg.add_gauge(pre + "up",
                  [this, p] { return paths_[p].up ? 1.0 : 0.0; });
  }
  reg.add_counter("paths.inflight_underflows",
                  [this] { return monitor_.inflight_underflows(); });

  reg.add_counter("dp.ingress_bytes", [this] { return ingress_bytes_; });
  reg.add_counter("dp.extra_copy_bytes",
                  [this] { return extra_copy_bytes_; });
  reg.add_gauge("dp.granularity", [this] {
    return static_cast<double>(static_cast<std::uint8_t>(granularity_));
  });
  if (replicator_) {
    reg.add_counter("repl.flows_seen",
                    [this] { return replicator_->flows_seen(); });
    reg.add_counter("repl.flows_replicated",
                    [this] { return replicator_->flows_replicated(); });
    reg.add_counter("repl.size_gated",
                    [this] { return replicator_->size_gated(); });
    reg.add_counter("repl.token_denied",
                    [this] { return replicator_->token_denied(); });
    reg.add_counter("repl.path_starved",
                    [this] { return replicator_->path_starved(); });
    reg.add_gauge("repl.tracked", [this] {
      return static_cast<double>(replicator_->tracked());
    });
    reg.add_gauge("dedup.registered_flows", [this] {
      return static_cast<double>(dedup_.registered_flows());
    });
  }

  reg.add_counter("dedup.dup_drops", [this] { return dedup_.dup_drops(); });
  reg.add_counter("dedup.late_drops",
                  [this] { return dedup_.late_drops(); });
  reg.add_counter("dedup.swept", [this] { return dedup_.swept(); });
  reg.add_gauge("dedup.pending", [this] {
    return static_cast<double>(dedup_.pending());
  });

  reg.add_counter("reorder.in_order",
                  [this] { return reorder_->in_order(); });
  reg.add_counter("reorder.out_of_order",
                  [this] { return reorder_->out_of_order(); });
  reg.add_counter("reorder.timeout_releases",
                  [this] { return reorder_->timeout_releases(); });
  reg.add_counter("reorder.late_after_skip",
                  [this] { return reorder_->late_after_skip(); });
  reg.add_gauge("reorder.buffered", [this] {
    return static_cast<double>(reorder_->buffered());
  });
  reg.add_histogram("reorder.dwell", &reorder_->dwell());
}

}  // namespace mdp::core
