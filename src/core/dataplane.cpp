#include "core/dataplane.hpp"

#include <cmath>
#include <stdexcept>

#include "core/path_egress.hpp"

namespace mdp::core {

MdpDataPlane::MdpDataPlane(sim::EventQueue& eq, net::PacketPool& pool,
                           DataPlaneConfig cfg, SchedulerPtr scheduler)
    : eq_(eq),
      pool_(pool),
      cfg_(cfg),
      scheduler_(std::move(scheduler)),
      router_(click::Router::Context{&eq, &pool}),
      monitor_(cfg.num_paths),
      rng_(cfg.seed),
      // Unit-mean lognormal: mu = -sigma^2/2.
      jitter_(-cfg.service_jitter_sigma * cfg.service_jitter_sigma / 2,
              cfg.service_jitter_sigma) {
  if (cfg_.num_paths == 0) throw std::invalid_argument("num_paths == 0");
  if (!scheduler_) throw std::invalid_argument("null scheduler");

  reorder_ = std::make_unique<ReorderBuffer>(
      eq_, cfg_.reorder, [this](net::PacketPtr pkt) {
        pkt->anno().egress_ns = eq_.now();
        ++egress_count_;
        counters_.inc("egress");
        if (egress_) egress_(std::move(pkt));
      });

  nf::ChainSpec spec = nf::ChainSpec::preset(cfg_.chain);
  std::string err;
  paths_.reserve(cfg_.num_paths);
  for (std::size_t p = 0; p < cfg_.num_paths; ++p) {
    Path path;
    path.core = std::make_unique<sim::SimCore>(
        eq_, "path" + std::to_string(p));
    auto built = nf::build_chain(router_, "path" + std::to_string(p), spec,
                                 &err);
    if (!built)
      throw std::runtime_error("chain build failed: " + err);
    path.chain_head = built->head;
    chain_cost_ns_ = built->cost_ns;

    auto pid = static_cast<std::uint16_t>(p);
    click::Element* egress_elem = router_.adopt(
        std::make_unique<PathEgress>([this, pid](net::PacketPtr pkt) {
          egress_consumed_ = true;
          on_path_complete(pid, std::move(pkt));
        }),
        "path" + std::to_string(p) + "_egress");
    if (!router_.connect(built->tail, 0, egress_elem, 0, &err))
      throw std::runtime_error("egress wiring failed: " + err);
    paths_.push_back(std::move(path));
  }
  if (!router_.initialize(&err))
    throw std::runtime_error("router init failed: " + err);

  if (cfg_.dedup_sweep_interval_ns > 0) schedule_dedup_sweep();
}

MdpDataPlane::~MdpDataPlane() = default;

void MdpDataPlane::schedule_dedup_sweep() {
  eq_.schedule_in(cfg_.dedup_sweep_interval_ns, [this] {
    dedup_.sweep(eq_.now(), cfg_.dedup_max_age_ns);
    schedule_dedup_sweep();
  });
}

sim::TimeNs MdpDataPlane::service_time(const net::Packet& pkt) {
  double base = static_cast<double>(chain_cost_ns_);
  if (cfg_.service_jitter_sigma > 0) base *= jitter_.sample(rng_);
  base += cfg_.per_byte_ns * static_cast<double>(pkt.length());
  return base < 1 ? 1 : static_cast<sim::TimeNs>(base);
}

void MdpDataPlane::ingress(net::PacketPtr pkt) {
  ++ingress_count_;
  counters_.inc("ingress");
  auto& a = pkt->anno();
  if (a.ingress_ns == 0) a.ingress_ns = eq_.now();
  a.seq = next_seq_[a.flow_id]++;

  select_buf_.clear();
  scheduler_->select(*pkt, *this, rng_, select_buf_);
  if (select_buf_.empty()) select_buf_.push_back(first_up_path(*this));

  const std::uint64_t k = Deduplicator::key(a.flow_id, a.seq);
  dedup_.expect(k, static_cast<std::uint8_t>(select_buf_.size()), eq_.now());
  if (select_buf_.size() > 1)
    counters_.inc("replicas", select_buf_.size() - 1);

  // Hedging: single-copy packets may get a late second copy. The clone is
  // parked now (the original moves into the path job and becomes
  // inaccessible) and dispatched only if the timeout fires first.
  if (select_buf_.size() == 1) {
    sim::TimeNs timeout = scheduler_->hedge_timeout_ns(*pkt, *this);
    if (timeout > 0) {
      net::PacketPtr clone = pool_.clone(*pkt);
      if (clone)
        arm_hedge(k, select_buf_[0], timeout, std::move(clone));
    }
  }

  // Dispatch copies: clones first (the original is consumed last).
  for (std::size_t i = 1; i < select_buf_.size(); ++i) {
    net::PacketPtr copy = pool_.clone(*pkt);
    if (!copy) {
      dedup_.cancel_one(k);
      continue;
    }
    copy->anno().copy_index = static_cast<std::uint8_t>(i);
    copy->anno().is_replica = true;
    dispatch(select_buf_[i], std::move(copy));
  }
  pkt->anno().copy_index = 0;
  pkt->anno().is_replica = false;
  dispatch(select_buf_[0], std::move(pkt));
}

void MdpDataPlane::dispatch(std::uint16_t path, net::PacketPtr pkt) {
  auto& a = pkt->anno();
  if (cfg_.path_queue_capacity > 0 &&
      paths_[path].core->queue_depth() >= cfg_.path_queue_capacity) {
    // Tail drop at the path queue: release the dedup slot so merged
    // delivery of surviving copies still works.
    dedup_.cancel_one(Deduplicator::key(a.flow_id, a.seq));
    counters_.inc("queue_drops");
    return;
  }
  a.dispatch_ns = eq_.now();
  a.path_id = path;
  monitor_.on_dispatch(path);
  counters_.inc("dispatched");

  sim::TimeNs service = service_time(*pkt);
  const std::uint64_t k = Deduplicator::key(a.flow_id, a.seq);
  bool jump_queue =
      cfg_.lc_priority &&
      a.traffic_class == net::TrafficClass::kLatencyCritical;
  paths_[path].core->submit(
      service,
      [this, path, k, pkt = std::move(pkt)](sim::TimeNs) mutable {
        if (!cfg_.functional_chain) {
          on_path_complete(path, std::move(pkt));
          return;
        }
        // Push through the real chain replica; PathEgress sets the flag.
        // If the chain filtered the packet (firewall deny, DPI drop), the
        // copy will never reach the merge stage — release its dedup slot.
        egress_consumed_ = false;
        paths_[path].chain_head->push(0, std::move(pkt));
        if (!egress_consumed_) {
          monitor_.on_filtered(path);
          dedup_.cancel_one(k);
          counters_.inc("chain_filtered");
        }
      },
      jump_queue);
}

void MdpDataPlane::on_path_complete(std::uint16_t path, net::PacketPtr pkt) {
  const auto& a = pkt->anno();
  sim::TimeNs latency = eq_.now() - a.dispatch_ns;
  monitor_.on_complete(path, latency);
  scheduler_->on_complete(path, latency);

  const std::uint64_t k = Deduplicator::key(a.flow_id, a.seq);
  // First completion cancels any parked hedge copy.
  if (auto it = hedge_parked_.find(k); it != hedge_parked_.end())
    hedge_parked_.erase(it);

  if (!dedup_.accept(k)) {
    counters_.inc("dup_dropped");
    return;  // duplicate copy: recycle
  }
  reorder_->submit(std::move(pkt));
}

void MdpDataPlane::arm_hedge(std::uint64_t key, std::uint16_t original_path,
                             sim::TimeNs timeout, net::PacketPtr clone) {
  clone->anno().hedged = true;
  clone->anno().is_replica = true;
  clone->anno().copy_index = 1;
  hedge_parked_.emplace(key, std::move(clone));
  eq_.schedule_in(timeout, [this, key, original_path] {
    auto it = hedge_parked_.find(key);
    if (it == hedge_parked_.end()) return;  // original completed in time
    net::PacketPtr copy = std::move(it->second);
    hedge_parked_.erase(it);
    // Best alternate: least-backlogged up path that is not the original.
    PathVec two;
    k_least_backlog_paths(*this, 2, two);
    std::uint16_t alt = original_path;
    for (std::uint16_t cand : two) {
      if (cand != original_path) {
        alt = cand;
        break;
      }
    }
    dedup_.add_expected(key);
    counters_.inc("hedges");
    dispatch(alt, std::move(copy));
  });
}

}  // namespace mdp::core
