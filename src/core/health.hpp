// PathHealthMonitor: automatic failure detection for last-mile paths.
//
// Periodically probes every path with a tiny health packet dispatched
// straight onto its core. A path that misses `down_after` consecutive
// probe deadlines is marked administratively down (schedulers stop
// selecting it); it recovers after `up_after` consecutive on-time probes.
// This turns the set_path_up() failover tested in the data plane into a
// closed loop — the "path blackholes silently" failure mode.
#pragma once

#include <cstdint>
#include <memory>
#include <functional>
#include <vector>

#include "core/dataplane.hpp"
#include "sim/event_queue.hpp"
#include "trace/registry.hpp"

namespace mdp::core {

struct HealthConfig {
  sim::TimeNs probe_interval_ns = 1 * sim::kMillisecond;
  /// A probe not completed within this budget counts as a miss.
  sim::TimeNs probe_deadline_ns = 500'000;
  int down_after = 3;  ///< consecutive misses before marking down
  int up_after = 2;    ///< consecutive passes before marking up again
  sim::TimeNs probe_cost_ns = 200;  ///< core time one probe consumes
};

class PathHealthMonitor {
 public:
  PathHealthMonitor(sim::EventQueue& eq, MdpDataPlane& dp,
                    HealthConfig cfg = {})
      : eq_(eq), dp_(dp), cfg_(cfg), state_(dp.num_paths()) {}

  /// Begin probing (self-rescheduling; drive the queue with run_until).
  void start();

  bool path_healthy(std::size_t p) const { return state_[p].healthy; }
  std::uint64_t probes_sent() const noexcept { return probes_sent_; }
  std::uint64_t probes_missed() const noexcept { return probes_missed_; }
  std::uint64_t down_transitions() const noexcept { return downs_; }
  std::uint64_t up_transitions() const noexcept { return ups_; }

  /// Observer hook fired on every health transition (path, now_healthy).
  void set_on_transition(std::function<void(std::size_t, bool)> cb) {
    on_transition_ = std::move(cb);
  }

  /// Expose probe counters through a StatsRegistry as `health.*`. The
  /// monitor must outlive any snapshot() taken from `reg`.
  void register_stats(trace::StatsRegistry& reg) const {
    reg.add_counter("health.probes_sent", [this] { return probes_sent_; });
    reg.add_counter("health.probes_missed",
                    [this] { return probes_missed_; });
    reg.add_counter("health.down_transitions", [this] { return downs_; });
    reg.add_counter("health.up_transitions", [this] { return ups_; });
    reg.add_gauge("health.paths_healthy", [this] {
      double n = 0;
      for (const auto& s : state_) n += s.healthy ? 1 : 0;
      return n;
    });
  }

 private:
  struct PathState {
    bool healthy = true;
    int misses = 0;
    int passes = 0;
    std::uint64_t probe_epoch = 0;  // invalidates stale completions
    bool probe_pending = false;
  };

  void probe_all();
  void on_probe_result(std::size_t path, std::uint64_t epoch, bool on_time);

  sim::EventQueue& eq_;
  MdpDataPlane& dp_;
  HealthConfig cfg_;
  std::vector<PathState> state_;
  std::function<void(std::size_t, bool)> on_transition_;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t probes_missed_ = 0;
  std::uint64_t downs_ = 0;
  std::uint64_t ups_ = 0;
};

}  // namespace mdp::core
