// Machine-readable run reports: one JSON document per scenario run, with
// the config, the headline metrics, the full stats snapshot, and (when
// tracing) per-stage histograms and tail exemplars. This is the export
// every figure in EXPERIMENTS.md can be regenerated from, and the format
// the bench binaries' --json flag emits.
//
// Schema: "mdp.run_report.v2" — documented in docs/OBSERVABILITY.md.
#pragma once

#include <string>

#include "harness/experiment.hpp"

namespace mdp::harness {

/// Serialize a completed scenario as a self-contained JSON object.
std::string scenario_report_json(const ScenarioConfig& cfg,
                                 const ScenarioResult& res);

/// Write `content` to `path` ("-" means stdout). Returns false on I/O
/// failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace mdp::harness
