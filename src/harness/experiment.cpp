#include "harness/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "harness/report.hpp"
#include "net/headers.hpp"
#include "telem/snapshot_exporter.hpp"
#include "workload/flow_size.hpp"

namespace mdp::harness {

namespace {

core::SchedulerPtr build_policy(const ScenarioConfig& cfg) {
  if (cfg.make_policy) return cfg.make_policy();
  auto s = core::make_scheduler(cfg.policy);
  if (!s) throw std::invalid_argument("unknown policy '" + cfg.policy + "'");
  return s;
}

struct Assembled {
  sim::EventQueue eq;
  net::PacketPool pool{4096, 2048, /*allow_growth=*/true};
  std::unique_ptr<core::MdpDataPlane> dp;
  std::vector<std::unique_ptr<sim::InterferenceModel>> noise;

  ~Assembled() {
    // Undrained events (saturated scenarios stop at the quiet heuristic,
    // and interference self-reschedules forever) hold closures that own
    // packets; destroy them while the pool and data plane still exist.
    eq.clear();
  }

  explicit Assembled(const ScenarioConfig& cfg) {
    core::DataPlaneConfig dpc = cfg.dp;
    dpc.num_paths = cfg.num_paths;
    dpc.chain = cfg.chain;
    dpc.seed = cfg.seed * 7919 + 13;
    dp = std::make_unique<core::MdpDataPlane>(eq, pool, dpc,
                                              build_policy(cfg));
    if (cfg.interference) {
      std::vector<std::size_t> targets = cfg.interference_paths;
      if (targets.empty())
        for (std::size_t p = 0; p < cfg.num_paths; ++p)
          targets.push_back(p);
      for (std::size_t p : targets) {
        noise.push_back(std::make_unique<sim::InterferenceModel>(
            eq, dp->core(p), cfg.interference_cfg,
            cfg.seed * 104729 + p * 31 + 1));
        noise.back()->start();
      }
    }
  }
};

/// Drive the event queue in slices until the workload finished and egress
/// has gone quiet (everything drained or stuck behind a cap).
template <typename DonePredicate>
void drive(sim::EventQueue& eq, DonePredicate done) {
  constexpr sim::TimeNs kSlice = 20 * sim::kMillisecond;
  constexpr sim::TimeNs kHorizon = 600 * sim::kSecond;
  while (eq.now() < kHorizon) {
    eq.run_until(eq.now() + kSlice);
    if (done()) break;
  }
}

}  // namespace

double mean_service_ns(const ScenarioConfig& cfg) {
  // Chain cost must match what the data plane will compute; build a probe
  // router to ask. Cheap (no traffic).
  sim::EventQueue eq;
  net::PacketPool pool(8, 2048);
  core::DataPlaneConfig dpc = cfg.dp;
  dpc.num_paths = 1;
  dpc.chain = cfg.chain;
  dpc.dedup_sweep_interval_ns = 0;
  core::MdpDataPlane probe(eq, pool, dpc,
                           core::make_scheduler("single"));
  double frame = net::kEthernetHeaderLen + net::kIpv4MinHeaderLen +
                 net::kUdpHeaderLen + cfg.mean_payload;
  return static_cast<double>(probe.chain_cost_ns()) +
         cfg.dp.per_byte_ns * frame;
}

ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  Assembled a(cfg);
  ScenarioResult res;
  res.chain_cost_ns = a.dp->chain_cost_ns();
  res.offered_load = cfg.load;

  // Registry lives for the whole run (not just the end-of-run snapshot)
  // so the telemetry exporter can harvest per-tick counter deltas.
  trace::StatsRegistry reg;
  a.dp->register_stats(reg);

  // --- stage tracing -------------------------------------------------------
  std::unique_ptr<trace::Tracer> tracer;
  if (cfg.trace) {
    trace::TracerConfig tc;
    tc.reservoir = cfg.reservoir;
    if (tc.reservoir.seed == 0) tc.reservoir.seed = cfg.seed;
    // Start disabled when there is a warmup phase: spans activate at
    // ingress, so enabling at the warmup boundary (below) means the trace
    // covers packets ingressed during the measured phase.
    tc.enabled = cfg.warmup_packets == 0;
    tracer = std::make_unique<trace::Tracer>(tc);
    a.dp->set_tracer(tracer.get());
    tracer->register_with(reg, "trace");
  }

  // --- control plane -------------------------------------------------------
  // Observation: every egress latency feeds the SloMonitor under the path
  // that served the packet. Decision/actuation: the Controller ticks on
  // the event queue (the sim-plane analog of the caller-thread tick) and
  // actuates through a SimPlaneActuator — masking via set_path_up, drains
  // via ReorderBuffer::flush_all, probation probes onto the path cores.
  std::unique_ptr<ctrl::SloMonitor> slo_mon;
  std::unique_ptr<ctrl::SimPlaneActuator> actuator;
  std::unique_ptr<ctrl::Controller> controller;
  std::unique_ptr<telem::SnapshotExporter> telem_exporter;
  if (cfg.ctrl_enabled) {
    slo_mon = std::make_unique<ctrl::SloMonitor>(cfg.num_paths,
                                                 cfg.ctrl.slo_target_ns);
    actuator =
        std::make_unique<ctrl::SimPlaneActuator>(a.eq, *a.dp, *slo_mon);
    controller =
        std::make_unique<ctrl::Controller>(cfg.ctrl, *actuator, *slo_mon);
    controller->register_stats(reg);
    slo_mon->register_stats(reg);
    if (cfg.telem_enabled) {
      telem::SnapshotExporter::Config tec;
      tec.capacity_ticks = cfg.telem_capacity_ticks;
      tec.registry = &reg;
      telem_exporter = std::make_unique<telem::SnapshotExporter>(tec);
      controller->set_telem_exporter(telem_exporter.get());
    }
    struct CtrlTicker {
      static void arm(sim::EventQueue& eq, ctrl::Controller& c,
                      sim::TimeNs period) {
        eq.schedule_in(period, [&eq, &c, period] {
          c.tick(static_cast<std::uint64_t>(eq.now()));
          arm(eq, c, period);
        });
      }
    };
    CtrlTicker::arm(a.eq, *controller,
                    cfg.ctrl_tick_interval_ns > 0 ? cfg.ctrl_tick_interval_ns
                                                  : sim::kMillisecond);
  }

  // --- egress instrumentation ---------------------------------------------
  std::uint64_t measured_first_ns = 0;
  std::uint64_t measured_last_ns = 0;
  a.dp->set_egress([&](net::PacketPtr pkt) {
    const auto& an = pkt->anno();
    if (slo_mon) {
      // Prefer stage evidence when the tracer stamped a span (post-warmup
      // with cfg.trace): the controller's decisions then carry a
      // dominant-stage verdict, not just a scalar.
#if MDP_TRACE_ENABLED
      if (an.span.active)
        slo_mon->observe_span(an.path_id, an.span);
      else
#endif
        slo_mon->observe(an.path_id, an.egress_ns - an.ingress_ns);
    }
    if (a.dp->egress_count() <= cfg.warmup_packets) return;
    if (tracer && !tracer->enabled()) tracer->set_enabled(true);
    sim::TimeNs lat = an.egress_ns - an.ingress_ns;
    res.latency.record(lat);
    if (an.traffic_class == net::TrafficClass::kLatencyCritical)
      res.lc_latency.record(lat);
    ++res.measured;
    if (measured_first_ns == 0) measured_first_ns = an.egress_ns;
    measured_last_ns = an.egress_ns;
  });

  // --- load calibration ------------------------------------------------------
  double svc = mean_service_ns(cfg);
  double mean_gap =
      svc / (static_cast<double>(cfg.num_paths) * cfg.load);

  workload::ArrivalPtr arrivals;
  if (cfg.bursty_arrivals) {
    workload::MmppConfig m = cfg.mmpp;
    // Choose base gap so the long-run MMPP rate hits the requested load.
    double p_hi =
        m.mean_hi_dwell_ns / (m.mean_hi_dwell_ns + m.mean_lo_dwell_ns);
    double rate_scale = (1 - p_hi) + p_hi * m.burst_factor;
    m.base_gap_ns = mean_gap * rate_scale;
    arrivals = std::make_unique<workload::MmppArrivals>(m);
  } else {
    arrivals = std::make_unique<workload::PoissonArrivals>(mean_gap);
  }

  workload::TrafficGenConfig tg;
  tg.seed = cfg.seed;
  tg.num_flows = cfg.num_flows;
  tg.latency_critical_fraction = cfg.lc_fraction;
  tg.mean_payload = cfg.mean_payload;
  workload::TrafficGen gen(
      a.eq, a.pool, tg, std::move(arrivals),
      [&](net::PacketPtr pkt) { a.dp->ingress(std::move(pkt)); });

  // --- queue-depth sampling ----------------------------------------------------
  if (cfg.sample_queues_interval_ns > 0) {
    for (std::size_t p = 0; p < cfg.num_paths; ++p)
      res.queue_depth_series.emplace_back(cfg.sample_queues_interval_ns,
                                          "path" + std::to_string(p));
    // Self-rescheduling sampler; stops mattering once we stop driving.
    struct Sampler {
      static void arm(sim::EventQueue& eq, core::MdpDataPlane& dp,
                      std::vector<stats::TimeSeries>& series,
                      sim::TimeNs period) {
        eq.schedule_in(period, [&eq, &dp, &series, period] {
          for (std::size_t p = 0; p < series.size(); ++p)
            series[p].observe_max(eq.now(),
                                  static_cast<double>(dp.queue_depth(p)));
          arm(eq, dp, series, period);
        });
      }
    };
    Sampler::arm(a.eq, *a.dp, res.queue_depth_series,
                 cfg.sample_queues_interval_ns);
  }

  // --- run ---------------------------------------------------------------------
  gen.start(cfg.packets);
  std::uint64_t last_egress = 0;
  drive(a.eq, [&] {
    if (gen.emitted() < cfg.packets) return false;
    bool quiet = a.dp->egress_count() == last_egress;
    last_egress = a.dp->egress_count();
    return quiet;  // one extra slice after the last egress movement
  });

  // --- results -------------------------------------------------------------------
  res.emitted = gen.emitted();
  res.egressed = a.dp->egress_count();
  res.sim_duration_ns = a.eq.now();
  const auto& c = a.dp->counters();
  std::uint64_t dispatched = c.get("dispatched");
  res.duplicate_fraction =
      dispatched ? static_cast<double>(c.get("dup_dropped")) /
                       static_cast<double>(dispatched)
                 : 0;
  res.replica_fraction =
      res.emitted ? static_cast<double>(c.get("replicas") + c.get("hedges")) /
                        static_cast<double>(res.emitted)
                  : 0;
  res.hedges = c.get("hedges");
  res.chain_filtered = c.get("chain_filtered");
  res.queue_drops = c.get("queue_drops");
  res.ooo_fraction = a.dp->reorder().ooo_fraction();
  res.reorder_timeout_releases = a.dp->reorder().timeout_releases();
  res.reorder_dwell.merge(a.dp->reorder().dwell());
  // Utilization over the active window (up to the last egress), not the
  // idle drain slices the driver adds after the workload completes.
  sim::TimeNs active_ns = measured_last_ns ? measured_last_ns : a.eq.now();
  for (std::size_t p = 0; p < cfg.num_paths; ++p) {
    res.per_path_dispatched.push_back(a.dp->monitor().dispatched(p));
    res.per_path_utilization.push_back(
        active_ns ? static_cast<double>(a.dp->core(p).busy_ns()) /
                        static_cast<double>(active_ns)
                  : 0);
  }
  if (measured_last_ns > measured_first_ns && res.measured > 1)
    res.achieved_mpps = static_cast<double>(res.measured - 1) * 1e3 /
                        static_cast<double>(measured_last_ns -
                                            measured_first_ns);

  // --- metric snapshot ------------------------------------------------------
  if (controller) {
    res.ctrl_report = controller->report_json();
    res.ctrl_quarantines = controller->quarantines();
    res.ctrl_reinstatements = controller->reinstatements();
  }
  if (telem_exporter) {
    res.telem_report = telem_exporter->to_json();
    if (!cfg.telem_prometheus_path.empty())
      write_text_file(cfg.telem_prometheus_path,
                      telem_exporter->to_prometheus());
  }
  for (const auto& ts : res.queue_depth_series) reg.add_time_series(&ts);
  res.stats = reg.snapshot();
  if (tracer) res.trace = tracer->report();
  return res;
}

RpcScenarioResult run_rpc_scenario(const ScenarioConfig& cfg,
                                   const std::string& workload_name,
                                   std::uint64_t num_rpc_flows) {
  Assembled a(cfg);
  auto sizes = workload::flow_sizes_by_name(workload_name);
  if (!sizes)
    throw std::invalid_argument("unknown workload '" + workload_name + "'");

  // Calibrate flow interarrival so packet rate ~= requested load.
  double svc = mean_service_ns(cfg);
  double pkt_rate = static_cast<double>(cfg.num_paths) * cfg.load / svc;
  workload::RpcWorkloadConfig rc;
  rc.seed = cfg.seed;
  double mean_flow_bytes = sizes->mean();
  double mean_pkts =
      std::min<double>(std::max(1.0, mean_flow_bytes / rc.mss),
                       static_cast<double>(rc.max_packets_per_flow));
  rc.mean_interarrival_ns = mean_pkts / pkt_rate;

  workload::RpcWorkload* rpc_ptr = nullptr;
  a.dp->set_egress([&](net::PacketPtr pkt) {
    if (rpc_ptr)
      rpc_ptr->on_packet_egress(pkt->anno().flow_id, a.eq.now());
  });
  workload::RpcWorkload rpc(
      a.eq, a.pool, rc, std::move(sizes),
      [&](net::PacketPtr pkt) { a.dp->ingress(std::move(pkt)); });
  rpc_ptr = &rpc;
  // Retire per-flow replication/dedup state as soon as a flow completes;
  // copies still in flight become late drops, never double-deliveries.
  rpc.set_flow_done(
      [&](std::uint32_t flow_id) { a.dp->end_flow(flow_id); });

  rpc.start(num_rpc_flows);
  std::uint64_t last_done = 0;
  drive(a.eq, [&] {
    if (rpc.flows_started() < num_rpc_flows) return false;
    bool quiet = rpc.flows_completed() == last_done;
    last_done = rpc.flows_completed();
    return quiet;
  });

  RpcScenarioResult out;
  out.short_fct.merge(rpc.short_fct());
  out.long_fct.merge(rpc.long_fct());
  out.all_fct.merge(rpc.all_fct());
  out.flows_started = rpc.flows_started();
  out.flows_completed = rpc.flows_completed();
  out.ingress_bytes = a.dp->ingress_bytes();
  out.extra_copy_bytes = a.dp->extra_copy_bytes();
  out.duplicate_byte_fraction = a.dp->duplicate_byte_fraction();
  if (const core::FlowReplicator* r = a.dp->flow_replicator())
    out.flows_replicated = r->flows_replicated();
  out.hedges_fired =
      a.dp->fast_counters().get(core::DpCounter::kHedges);
  return out;
}

}  // namespace mdp::harness
