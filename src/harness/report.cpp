#include "harness/report.hpp"

#include <cstdio>

#include "trace/json.hpp"

namespace mdp::harness {

namespace {

void write_hist_summary(trace::JsonWriter& w,
                        const stats::LatencyHistogram& h) {
  w.begin_object();
  w.key("count").value(h.count());
  w.key("sum_ns").value(h.sum());
  w.key("mean_ns").value(h.mean());
  w.key("min_ns").value(h.min());
  w.key("max_ns").value(h.max());
  w.key("p50_ns").value(h.p50());
  w.key("p90_ns").value(h.p90());
  w.key("p99_ns").value(h.p99());
  w.key("p999_ns").value(h.p999());
  w.key("p9999_ns").value(h.p9999());
  w.end_object();
}

}  // namespace

std::string scenario_report_json(const ScenarioConfig& cfg,
                                 const ScenarioResult& res) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("schema").value("mdp.run_report.v2");

  w.key("config").begin_object();
  w.key("policy").value(cfg.policy);
  w.key("paths").value(static_cast<std::uint64_t>(cfg.num_paths));
  w.key("chain").value(cfg.chain);
  w.key("load").value(cfg.load);
  w.key("packets").value(cfg.packets);
  w.key("warmup_packets").value(cfg.warmup_packets);
  w.key("num_flows").value(static_cast<std::uint64_t>(cfg.num_flows));
  w.key("lc_fraction").value(cfg.lc_fraction);
  w.key("mean_payload").value(cfg.mean_payload);
  w.key("bursty_arrivals").value(cfg.bursty_arrivals);
  w.key("interference").value(cfg.interference);
  if (cfg.interference) {
    w.key("interference_duty").value(cfg.interference_cfg.duty_cycle);
    w.key("interference_burst_ns")
        .value(static_cast<double>(cfg.interference_cfg.mean_burst_ns));
  }
  w.key("lc_priority").value(cfg.dp.lc_priority);
  w.key("reorder_enabled").value(cfg.dp.reorder.enabled);
  w.key("seed").value(cfg.seed);
  w.key("trace").value(cfg.trace);
  w.key("ctrl_enabled").value(cfg.ctrl_enabled);
  w.key("telem_enabled").value(cfg.telem_enabled);
  w.end_object();

  w.key("metrics").begin_object();
  w.key("emitted").value(res.emitted);
  w.key("egressed").value(res.egressed);
  w.key("measured").value(res.measured);
  w.key("achieved_mpps").value(res.achieved_mpps);
  w.key("offered_load").value(res.offered_load);
  w.key("duplicate_fraction").value(res.duplicate_fraction);
  w.key("replica_fraction").value(res.replica_fraction);
  w.key("hedges").value(res.hedges);
  w.key("chain_filtered").value(res.chain_filtered);
  w.key("queue_drops").value(res.queue_drops);
  w.key("ooo_fraction").value(res.ooo_fraction);
  w.key("reorder_timeout_releases").value(res.reorder_timeout_releases);
  w.key("sim_duration_ns")
      .value(static_cast<std::uint64_t>(res.sim_duration_ns));
  w.key("chain_cost_ns")
      .value(static_cast<std::uint64_t>(res.chain_cost_ns));
  w.key("latency");
  write_hist_summary(w, res.latency);
  w.key("lc_latency");
  write_hist_summary(w, res.lc_latency);
  w.key("reorder_dwell");
  write_hist_summary(w, res.reorder_dwell);
  w.key("per_path").begin_array();
  for (std::size_t p = 0; p < res.per_path_dispatched.size(); ++p) {
    w.begin_object();
    w.key("path").value(static_cast<std::uint64_t>(p));
    w.key("dispatched").value(res.per_path_dispatched[p]);
    w.key("utilization")
        .value(p < res.per_path_utilization.size()
                   ? res.per_path_utilization[p]
                   : 0.0);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  // Controller decision log + lifetime counters (present iff the run had
  // ctrl_enabled; fields documented in docs/OBSERVABILITY.md).
  if (!res.ctrl_report.empty()) w.key("ctrl").raw(res.ctrl_report);

  // Telemetry time series: per-tick per-path window quantiles + stage
  // sums + counter deltas (present iff telem_enabled; the v1 -> v2
  // schema addition, documented in docs/OBSERVABILITY.md).
  if (!res.telem_report.empty()) w.key("telem").raw(res.telem_report);

  // Full registry snapshot (per-stage histograms live here too, under
  // "trace.stage.*", alongside per-path counters and dedup/reorder stats).
  w.key("stats").raw(res.stats.to_json());

  if (res.trace) {
    w.key("trace").raw(res.trace->to_json());
  }
  w.end_object();
  return w.take();
}

bool write_text_file(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    std::fputc('\n', stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  std::fputc('\n', f);
  int rc = std::fclose(f);
  return n == content.size() && rc == 0;
}

}  // namespace mdp::harness
