// Experiment harness: one-call scenario runner shared by all bench
// binaries. Assembles event queue + pool + multipath data plane + workload
// + optional interference, runs warmup and measurement phases, and returns
// the metrics every figure/table is built from.
//
// Load semantics: `load` is the offered fraction of the aggregate path
// capacity (num_paths cores x 1/mean_service). Redundant policies do extra
// internal work at the same offered load — exactly the overhead Fig 9
// quantifies.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dataplane.hpp"
#include "core/scheduler.hpp"
#include "ctrl/controller.hpp"
#include "sim/interference.hpp"
#include "stats/histogram.hpp"
#include "stats/time_series.hpp"
#include "trace/registry.hpp"
#include "trace/tracer.hpp"
#include "workload/rpc_workload.hpp"
#include "workload/traffic_gen.hpp"

namespace mdp::harness {

struct ScenarioConfig {
  // Policy: either a name for core::make_scheduler, or a factory for
  // ablations with custom parameters.
  std::string policy = "jsq";
  std::function<core::SchedulerPtr()> make_policy;  ///< overrides `policy`

  std::size_t num_paths = 4;
  std::string chain = "fw-nat-lb";
  double load = 0.5;
  std::uint64_t packets = 200'000;
  std::uint64_t warmup_packets = 20'000;
  std::size_t num_flows = 256;
  double lc_fraction = 0.1;
  double mean_payload = 200;
  bool bursty_arrivals = false;  ///< MMPP instead of Poisson
  workload::MmppConfig mmpp{};   ///< gaps overwritten by load calibration

  bool interference = false;
  sim::InterferenceConfig interference_cfg{};
  /// Paths to attach interference to; empty = all paths.
  std::vector<std::size_t> interference_paths;

  core::DataPlaneConfig dp{};  ///< num_paths/chain/seed overwritten
  std::uint64_t seed = 1;

  /// If set, sample per-path queue depth into time series at this period.
  sim::TimeNs sample_queues_interval_ns = 0;

  /// Stage-level tracing: per-packet spans, per-stage histograms, tail
  /// exemplars. Enabled from the end of warmup so the trace covers the
  /// measured phase. Reservoir seed defaults to `seed` when left at 0.
  bool trace = false;
  trace::ReservoirConfig reservoir{.slowest_capacity = 32,
                                   .sample_capacity = 32,
                                   .seed = 0};

  /// Online control plane (mdp::ctrl): attach a Controller fed by egress
  /// latency observations, ticking on the event queue. Quarantine /
  /// drain / reinstate decisions and hedging actuate on the data plane
  /// mid-run; the decision log lands in ScenarioResult::ctrl_report and
  /// the "ctrl" section of mdp.run_report.v2.
  bool ctrl_enabled = false;
  ctrl::Config ctrl{};
  sim::TimeNs ctrl_tick_interval_ns = 1 * sim::kMillisecond;

  /// Telemetry plane (requires ctrl_enabled: the exporter rides the
  /// controller's tick). On every tick the harvested per-path windows
  /// (p50/p99/p99.9 + stage sums) and registry counter deltas land in a
  /// bounded in-memory time series, exported as the "telem" section of
  /// mdp.run_report.v2 (ScenarioResult::telem_report).
  bool telem_enabled = false;
  std::size_t telem_capacity_ticks = 4096;
  /// When non-empty, the final Prometheus text exposition (newest tick +
  /// cumulative counters) is written here at end of run ("-" = stdout).
  std::string telem_prometheus_path;
};

struct ScenarioResult {
  stats::LatencyHistogram latency;       ///< measured-phase egress latency
  stats::LatencyHistogram lc_latency;    ///< latency-critical subset
  std::uint64_t emitted = 0;
  std::uint64_t egressed = 0;            ///< total (incl. warmup)
  std::uint64_t measured = 0;            ///< egress events recorded
  double achieved_mpps = 0;              ///< egress rate over measured phase
  double offered_load = 0;
  double duplicate_fraction = 0;         ///< dup drops / dispatched
  double replica_fraction = 0;           ///< extra copies / ingress
  std::uint64_t hedges = 0;
  std::uint64_t chain_filtered = 0;
  std::uint64_t queue_drops = 0;
  double ooo_fraction = 0;               ///< out-of-order at merge point
  std::uint64_t reorder_timeout_releases = 0;
  stats::LatencyHistogram reorder_dwell;
  std::vector<std::uint64_t> per_path_dispatched;
  std::vector<double> per_path_utilization;
  std::vector<stats::TimeSeries> queue_depth_series;  ///< if sampling on
  sim::TimeNs sim_duration_ns = 0;
  sim::TimeNs chain_cost_ns = 0;

  /// Full metric snapshot (counters, per-path telemetry, dedup/reorder
  /// stats, dwell histogram) taken at the end of the run.
  trace::Snapshot stats;
  /// Stage-level trace results; engaged iff ScenarioConfig::trace.
  std::optional<trace::TraceReport> trace;
  /// Controller report JSON (config echo + counters + decision log);
  /// empty unless ScenarioConfig::ctrl_enabled. Spliced into run reports
  /// as the "ctrl" section.
  std::string ctrl_report;
  std::uint64_t ctrl_quarantines = 0;
  std::uint64_t ctrl_reinstatements = 0;
  /// Telemetry time series JSON (mdp.telem.v1); empty unless
  /// ScenarioConfig::telem_enabled. Spliced into run reports as the
  /// "telem" section of mdp.run_report.v2.
  std::string telem_report;
};

/// Run a packet-level scenario (Figs 1, 6-10, 12; Tab 2).
ScenarioResult run_scenario(const ScenarioConfig& cfg);

struct RpcScenarioResult {
  stats::LatencyHistogram short_fct;
  stats::LatencyHistogram long_fct;
  stats::LatencyHistogram all_fct;
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  // Duplicate-byte accounting (the cost axis of the FCT benches): bytes
  // offered at ingress vs bytes spent on redundant copies (scheduler
  // replicas, flow replicas, fired hedges).
  std::uint64_t ingress_bytes = 0;
  std::uint64_t extra_copy_bytes = 0;
  /// extra / (ingress + extra); 0 when nothing was duplicated.
  double duplicate_byte_fraction = 0.0;
  // Flow-replication stats (0 unless ScenarioConfig::dp.flow_repl.enabled).
  std::uint64_t flows_replicated = 0;
  std::uint64_t hedges_fired = 0;
};

/// Run a flow-level FCT scenario (Fig 11). `workload_name` selects the
/// flow-size CDF ("websearch" | "datamining" | "uniform").
RpcScenarioResult run_rpc_scenario(const ScenarioConfig& cfg,
                                   const std::string& workload_name,
                                   std::uint64_t num_rpc_flows);

/// Mean per-packet service time implied by a config (chain cost + payload
/// touch cost); used for load calibration and reporting.
double mean_service_ns(const ScenarioConfig& cfg);

}  // namespace mdp::harness
