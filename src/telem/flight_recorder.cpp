#include "telem/flight_recorder.hpp"

#include <algorithm>
#include <bit>

#include "trace/json.hpp"

namespace mdp::telem {

FlightRecorder::FlightRecorder(Config cfg) : cfg_(cfg), enabled_(cfg.enabled) {
  if (cfg_.events_per_channel == 0) cfg_.events_per_channel = 1;
  cfg_.events_per_channel = std::bit_ceil(cfg_.events_per_channel);
  if (cfg_.max_channels == 0) cfg_.max_channels = 1;
}

FlightRecorder::Channel* FlightRecorder::channel(std::string_view name) {
  std::lock_guard<std::mutex> lk(reg_mu_);
  for (const auto& c : channels_)
    if (c->name() == name) return c.get();
  if (channels_.size() >= cfg_.max_channels) return nullptr;
  channels_.emplace_back(std::unique_ptr<Channel>(
      new Channel(this, std::string(name), cfg_.events_per_channel)));
  return channels_.back().get();
}

std::vector<std::string> FlightRecorder::channel_names() const {
  std::lock_guard<std::mutex> lk(reg_mu_);
  std::vector<std::string> out;
  out.reserve(channels_.size());
  for (const auto& c : channels_) out.push_back(c->name());
  return out;
}

std::size_t FlightRecorder::memory_bytes() const {
  std::lock_guard<std::mutex> lk(reg_mu_);
  std::size_t n = 0;
  for (const auto& c : channels_)
    n += c->capacity() * sizeof(Channel::Slot);
  return n;
}

std::vector<Event> FlightRecorder::collect(std::uint64_t window_ns) const {
  std::vector<Event> out;
  {
    std::lock_guard<std::mutex> lk(reg_mu_);
    for (std::size_t ci = 0; ci < channels_.size(); ++ci) {
      const Channel& ch = *channels_[ci];
      const std::uint64_t head = ch.head_.load(std::memory_order_acquire);
      const std::uint64_t cap = ch.mask_ + 1;
      const std::uint64_t lo = head > cap ? head - cap : 0;
      for (std::uint64_t j = lo; j < head; ++j) {
        const Channel::Slot& s = ch.slots_[j & ch.mask_];
        // Seqlock reader: accept only a stable, even version matching
        // event j exactly — anything else is mid-write or already
        // overwritten by a newer event and will be picked up (or not)
        // under its own index.
        const std::uint64_t v1 = s.ver.load(std::memory_order_acquire);
        if (v1 != 2 * j + 2) continue;
        // Fence-free reader half of the seqlock (see emit()): the word
        // loads are acquire, so the v2 re-check cannot be hoisted above
        // any of them, and none of them can be hoisted above v1.
        Event e;
        e.ts_ns = s.ts.load(std::memory_order_acquire);
        e.seq = s.seq.load(std::memory_order_acquire);
        const std::uint64_t meta = s.meta.load(std::memory_order_acquire);
        e.b = s.b.load(std::memory_order_acquire);
        const std::uint64_t v2 = s.ver.load(std::memory_order_relaxed);
        if (v1 != v2) continue;
        e.type = static_cast<EventType>(meta & 0xff);
        e.path = static_cast<std::uint16_t>((meta >> 8) & 0xffff);
        e.a = static_cast<std::uint32_t>(meta >> 32);
        e.channel = static_cast<std::uint32_t>(ci);
        out.push_back(e);
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Event& x, const Event& y) {
    return x.ts_ns != y.ts_ns ? x.ts_ns < y.ts_ns : x.seq < y.seq;
  });
  if (window_ns > 0 && !out.empty()) {
    const std::uint64_t newest = out.back().ts_ns;
    const std::uint64_t cutoff = newest > window_ns ? newest - window_ns : 0;
    out.erase(std::remove_if(out.begin(), out.end(),
                             [cutoff](const Event& e) {
                               return e.ts_ns < cutoff;
                             }),
              out.end());
  }
  return out;
}

std::string FlightRecorder::dump_json(std::uint64_t window_ns) const {
  const std::vector<Event> events = collect(window_ns);
  const std::vector<std::string> names = channel_names();
  trace::JsonWriter w;
  w.begin_object();
  w.key("schema").value("mdp.flight_recorder.v1");
  w.key("emitted").value(total_emitted());
  w.key("retained").value(static_cast<std::uint64_t>(events.size()));
  w.key("window_ns").value(window_ns);
  w.key("channels").begin_array();
  for (const auto& n : names) w.value(n);
  w.end_array();
  w.key("events").begin_array();
  for (const Event& e : events) {
    w.begin_object();
    w.key("t").value(e.ts_ns);
    w.key("seq").value(e.seq);
    w.key("chan").value(e.channel < names.size() ? names[e.channel] : "?");
    w.key("type").value(event_type_name(e.type));
    w.key("path").value(static_cast<std::uint64_t>(e.path));
    w.key("n").value(static_cast<std::uint64_t>(e.a));
    w.key("data").value(e.b);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace mdp::telem
