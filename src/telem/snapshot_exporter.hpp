// SnapshotExporter: the periodic half of the telemetry plane. The
// Controller forwards every per-path window it harvests (one call per
// path per tick) plus an optional StatsRegistry, and the exporter keeps
// a bounded in-memory time series of per-tick rows:
//
//   tick, now_ns,
//   per path: samples, violations, p50/p99/p99.9/max, per-stage sums,
//   per tick: counter deltas since the previous tick (registry feeders).
//
// Capacity is bounded (overwrite-oldest, evictions counted), so the
// exporter can run for the whole soak without growing. to_json() is the
// "telem" section of mdp.run_report.v2 (docs/OBSERVABILITY.md);
// to_prometheus() renders the newest tick plus cumulative counters in
// the Prometheus text exposition format for external scraping (write it
// to a file/fd with harness::write_text_file or from the caller's own
// sink on whatever cadence scraping needs).
//
// Threading: caller-thread only, same contract as Controller::tick()
// (which is the only writer). Readers (to_json/to_prometheus) run after
// the run or between ticks on the same thread.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "trace/registry.hpp"
#include "trace/span.hpp"

namespace mdp::telem {

/// One path's harvested window, flattened (mirror of ctrl::WindowStats —
/// telem sits below mdp::ctrl in the link order, so the controller
/// converts rather than the exporter including ctrl headers).
struct PathTickStats {
  std::uint16_t path = 0;
  std::uint64_t samples = 0;
  std::uint64_t violations = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
  std::uint64_t max_ns = 0;
  std::array<std::uint64_t, trace::kNumStages> stage_sum_ns{};
  /// The controller's forecast for this path at harvest time
  /// (mdp::forecast; docs/FORECAST.md). Serialized as a "forecast"
  /// sub-object only when has_forecast is set, so runs without the
  /// forecast stage keep the pre-forecast mdp.telem.v1 bytes.
  bool has_forecast = false;
  std::uint64_t fc_p99_ns = 0;
  std::uint64_t fc_p999_ns = 0;
  double fc_confidence = 0.0;
  std::uint64_t fc_horizon_ticks = 0;
  bool fc_actionable = false;
  /// Trending dominant stage ("" = no worsening stage trend).
  const char* fc_stage = "";
};

/// One tenant's harvested window (ctrl::TenantAdmission::tick_tenant,
/// flattened for the same layering reason as PathTickStats). Rows appear
/// in the export only for ticks where the controller had tenants
/// attached, so the mdp.telem.v1 schema stays back-compatible
/// (docs/TENANCY.md).
struct TenantTickStats {
  std::uint16_t tenant = 0;
  const char* state = "";  ///< ctrl::tenant_state_name at harvest time
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t flow_arrivals = 0;
  std::uint64_t samples = 0;
  std::uint64_t violations = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
  std::uint64_t max_ns = 0;
};

class SnapshotExporter {
 public:
  struct Config {
    /// Ticks retained; the oldest rows are evicted past this bound.
    std::size_t capacity_ticks = 4096;
    /// When set, end_tick() snapshots the registry's counters and the
    /// tick row carries their deltas since the previous tick. The
    /// registry (and everything registered in it) must outlive the
    /// exporter's last end_tick().
    const trace::StatsRegistry* registry = nullptr;
  };

  SnapshotExporter() : SnapshotExporter(Config{}) {}
  explicit SnapshotExporter(Config cfg);

  /// Open the row for `tick`. Controller calls this at the top of its
  /// tick, then add_path() per harvested path, then end_tick().
  void begin_tick(std::uint64_t tick, std::uint64_t now_ns);
  void add_path(const PathTickStats& s);
  void add_tenant(const TenantTickStats& s);
  void end_tick();

  std::uint64_t ticks_recorded() const noexcept { return recorded_; }
  std::uint64_t ticks_evicted() const noexcept { return evicted_; }

  /// The "telem" section of mdp.run_report.v2: schema tag, bounds, and
  /// the retained tick rows (per-path quantiles + stage sums, counter
  /// deltas). Deterministic for deterministic inputs.
  std::string to_json() const;

  /// Prometheus text exposition: newest tick's per-path window gauges
  /// (mdp_telem_window_*) and cumulative registry counters/gauges.
  std::string to_prometheus() const;

 private:
  struct TickRow {
    std::uint64_t tick = 0;
    std::uint64_t now_ns = 0;
    std::vector<PathTickStats> paths;
    std::vector<TenantTickStats> tenants;
    /// Non-zero counter deltas over this tick, sorted by name.
    std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
  };

  Config cfg_;
  std::deque<TickRow> rows_;
  TickRow open_row_;
  bool open_ = false;
  std::uint64_t recorded_ = 0;
  std::uint64_t evicted_ = 0;
  std::map<std::string, std::uint64_t> last_counters_;
};

}  // namespace mdp::telem
