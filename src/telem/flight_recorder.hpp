// FlightRecorder: the always-on event plane — bounded, lock-free,
// overwrite-oldest rings of fixed-size binary events, one ring per
// writer, merged on demand into a single time-ordered JSON timeline.
//
// Design constraints, in order:
//   1. emit() must be cheap enough to leave on in the hot path (the
//      ext2 telem-on/off perf rows gate this): one enabled check, one
//      relaxed epoch fetch_add, one version exchange and five stores
//      into a preallocated slot. No allocation, no locks, no branches on
//      contention — each Channel has exactly one writer (SPSC toward the
//      dump side), so there is nothing to contend on.
//   2. dump must be safe while writers run. Every slot is a seqlock: the
//      writer publishes odd-version / words / even-version (fence-free —
//      ordering rides on the version word itself, see emit()), the
//      reader rejects any slot whose version moved or is odd. All slot
//      accesses are atomic, so a concurrent dump is TSan-clean by
//      construction and simply skips events that were mid-overwrite.
//   3. dumps must be a deterministic artifact. Timestamps are CALLER
//      time (the sim/rig logical clock or wall clock — the recorder
//      never reads a clock itself), and ties are broken by a per-
//      recorder epoch counter stamped at emit. A single-threaded
//      deterministic harness (tests/chaos_harness.hpp) therefore gets
//      byte-identical dumps for the same seed, which is what lets a
//      failed CI seed be diagnosed from the attached timeline alone.
//
// Memory model: channels are created up front (channel() is mutex-
// guarded and NOT for the hot path); each holds events_per_channel
// (rounded up to a power of two) slots of five 8-byte atomics. The
// recorder never grows after that — total footprint is
// channels * slots * 40 bytes, reported by memory_bytes().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mdp::telem {

/// Fixed event vocabulary. The binary form stores the enum; dump_json
/// renders event_type_name(). Extend at the end (codes are part of the
/// mdp.flight_recorder.v1 schema, see docs/OBSERVABILITY.md).
enum class EventType : std::uint8_t {
  kIngressBurst = 0,   ///< a burst admitted into the plane (a = count)
  kEgressBurst,        ///< a burst collected/egressed (a = count)
  kHedgeFire,          ///< a hedge copy launched (path = alt, b = key)
  kDedupDrop,          ///< a duplicate dropped at merge (b = key)
  kReorderRelease,     ///< resequencer released a packet (b = flow|seq)
  kCtrlDecision,       ///< controller logged a decision (a = reason code)
  kFaultInject,        ///< a fault lane armed (a=1) or cleared (a=0)
  kAdmissionFlip,      ///< path admission changed (a = new Admission)
  kUser,               ///< free-form, caller-defined payload
  kCount,
};

inline const char* event_type_name(EventType t) noexcept {
  switch (t) {
    case EventType::kIngressBurst: return "ingress_burst";
    case EventType::kEgressBurst: return "egress_burst";
    case EventType::kHedgeFire: return "hedge_fire";
    case EventType::kDedupDrop: return "dedup_drop";
    case EventType::kReorderRelease: return "reorder_release";
    case EventType::kCtrlDecision: return "ctrl_decision";
    case EventType::kFaultInject: return "fault_inject";
    case EventType::kAdmissionFlip: return "admission_flip";
    case EventType::kUser: return "user";
    case EventType::kCount: break;
  }
  return "?";
}

/// `path` value for events that describe the whole plane, not one path.
inline constexpr std::uint16_t kAllPaths = 0xffff;

/// One decoded event, as returned by collect(). 32 bytes on the wire
/// (ts, epoch, packed type/path/a, b) plus the channel it came from.
struct Event {
  std::uint64_t ts_ns = 0;   ///< caller-supplied logical/wall timestamp
  std::uint64_t seq = 0;     ///< recorder-wide emit order (merge tiebreak)
  EventType type = EventType::kUser;
  std::uint16_t path = 0;
  std::uint32_t a = 0;       ///< small payload: count / code / flag
  std::uint64_t b = 0;       ///< large payload: key / total / latency
  std::uint32_t channel = 0; ///< index into channel_names()
};

class FlightRecorder {
 public:
  struct Config {
    /// Slots per channel, rounded up to a power of two. Oldest events
    /// are overwritten once a channel wraps.
    std::size_t events_per_channel = 4096;
    /// Channels creatable before channel() starts returning nullptr.
    std::size_t max_channels = 16;
    bool enabled = true;
  };

  /// One writer's ring. Single writer per channel; emit() is wait-free.
  class Channel {
   public:
    /// Record one event. `ts_ns` is caller time — pass the same clock
    /// the rest of the run uses (sim time, rig iteration time, wall
    /// time) so the merged timeline is coherent.
    void emit(std::uint64_t ts_ns, EventType type, std::uint16_t path,
              std::uint32_t a, std::uint64_t b) noexcept {
      if (!owner_->enabled_.load(std::memory_order_relaxed)) return;
      const std::uint64_t seq =
          owner_->epoch_.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t h = head_.load(std::memory_order_relaxed);
      Slot& s = slots_[h & mask_];
      // Seqlock writer, fence-free (GCC's TSan has no model for
      // atomic_thread_fence and rejects it under -Werror): the odd
      // marker is an acq_rel RMW whose acquire side keeps the word
      // stores below it, and the even marker is a release store that
      // keeps them above it — a reader that sees the exact even version
      // on both sides of its word loads therefore saw every word.
      s.ver.exchange(2 * h + 1, std::memory_order_acq_rel);
      s.ts.store(ts_ns, std::memory_order_relaxed);
      s.seq.store(seq, std::memory_order_relaxed);
      s.meta.store(pack_meta(type, path, a), std::memory_order_relaxed);
      s.b.store(b, std::memory_order_relaxed);
      s.ver.store(2 * h + 2, std::memory_order_release);
      head_.store(h + 1, std::memory_order_release);
    }

    const std::string& name() const noexcept { return name_; }
    std::size_t capacity() const noexcept { return mask_ + 1; }
    /// Events ever emitted on this channel (monotonic; the ring retains
    /// only the last capacity() of them).
    std::uint64_t emitted() const noexcept {
      return head_.load(std::memory_order_acquire);
    }

   private:
    friend class FlightRecorder;

    struct Slot {
      std::atomic<std::uint64_t> ver{0};  ///< 0 = never written
      std::atomic<std::uint64_t> ts{0};
      std::atomic<std::uint64_t> seq{0};
      std::atomic<std::uint64_t> meta{0};
      std::atomic<std::uint64_t> b{0};
    };

    Channel(FlightRecorder* owner, std::string name, std::size_t capacity)
        : owner_(owner),
          name_(std::move(name)),
          mask_(capacity - 1),
          slots_(std::make_unique<Slot[]>(capacity)) {}

    static std::uint64_t pack_meta(EventType type, std::uint16_t path,
                                   std::uint32_t a) noexcept {
      return static_cast<std::uint64_t>(static_cast<std::uint8_t>(type)) |
             (static_cast<std::uint64_t>(path) << 8) |
             (static_cast<std::uint64_t>(a) << 32);
    }

    FlightRecorder* owner_;
    std::string name_;
    std::size_t mask_;
    std::unique_ptr<Slot[]> slots_;
    std::atomic<std::uint64_t> head_{0};
  };

  FlightRecorder() : FlightRecorder(Config{}) {}
  explicit FlightRecorder(Config cfg);

  /// Get-or-create the named channel. Mutex-guarded registration (cold
  /// path: call at setup, keep the pointer). Returns nullptr once
  /// max_channels is reached; the pointer stays valid for the
  /// recorder's lifetime.
  Channel* channel(std::string_view name);

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Events ever emitted across all channels (= the epoch clock).
  std::uint64_t total_emitted() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  std::vector<std::string> channel_names() const;
  std::size_t memory_bytes() const;

  /// Decode and merge every channel's retained events into one list
  /// ordered by (ts_ns, seq). `window_ns` > 0 keeps only events within
  /// that span of the newest retained timestamp ("the last N ms").
  /// Safe to call while writers emit; slots mid-overwrite are skipped.
  std::vector<Event> collect(std::uint64_t window_ns = 0) const;

  /// The merged timeline as `mdp.flight_recorder.v1` JSON (schema in
  /// docs/OBSERVABILITY.md). Deterministic for deterministic inputs.
  std::string dump_json(std::uint64_t window_ns = 0) const;

 private:
  Config cfg_;
  std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> epoch_{0};
  mutable std::mutex reg_mu_;
  std::vector<std::unique_ptr<Channel>> channels_;
};

}  // namespace mdp::telem
