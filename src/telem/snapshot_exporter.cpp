#include "telem/snapshot_exporter.hpp"

#include <cctype>
#include <string_view>

#include "trace/json.hpp"

namespace mdp::telem {

SnapshotExporter::SnapshotExporter(Config cfg) : cfg_(cfg) {
  if (cfg_.capacity_ticks == 0) cfg_.capacity_ticks = 1;
}

void SnapshotExporter::begin_tick(std::uint64_t tick, std::uint64_t now_ns) {
  if (open_) end_tick();  // tolerate a missed end_tick
  open_row_ = TickRow{};
  open_row_.tick = tick;
  open_row_.now_ns = now_ns;
  open_ = true;
}

void SnapshotExporter::add_path(const PathTickStats& s) {
  if (!open_) return;
  open_row_.paths.push_back(s);
}

void SnapshotExporter::add_tenant(const TenantTickStats& s) {
  if (!open_) return;
  open_row_.tenants.push_back(s);
}

void SnapshotExporter::end_tick() {
  if (!open_) return;
  if (cfg_.registry) {
    trace::Snapshot snap = cfg_.registry->snapshot();
    for (const auto& [name, value] : snap.counters) {
      const auto it = last_counters_.find(name);
      const std::uint64_t prev = it == last_counters_.end() ? 0 : it->second;
      if (value > prev)
        open_row_.counter_deltas.emplace_back(name, value - prev);
    }
    last_counters_ = std::move(snap.counters);
  }
  rows_.push_back(std::move(open_row_));
  ++recorded_;
  while (rows_.size() > cfg_.capacity_ticks) {
    rows_.pop_front();
    ++evicted_;
  }
  open_ = false;
}

std::string SnapshotExporter::to_json() const {
  trace::JsonWriter w;
  w.begin_object();
  w.key("schema").value("mdp.telem.v1");
  w.key("capacity_ticks")
      .value(static_cast<std::uint64_t>(cfg_.capacity_ticks));
  w.key("ticks_recorded").value(recorded_);
  w.key("ticks_evicted").value(evicted_);
  w.key("ticks").begin_array();
  for (const TickRow& row : rows_) {
    w.begin_object();
    w.key("tick").value(row.tick);
    w.key("now_ns").value(row.now_ns);
    w.key("paths").begin_array();
    for (const PathTickStats& p : row.paths) {
      w.begin_object();
      w.key("path").value(static_cast<std::uint64_t>(p.path));
      w.key("samples").value(p.samples);
      w.key("violations").value(p.violations);
      w.key("sum_ns").value(p.sum_ns);
      w.key("p50_ns").value(p.p50_ns);
      w.key("p99_ns").value(p.p99_ns);
      w.key("p999_ns").value(p.p999_ns);
      w.key("max_ns").value(p.max_ns);
      w.key("stage_sum_ns").begin_object();
      for (std::size_t i = 0; i < trace::kNumStages; ++i)
        if (p.stage_sum_ns[i])
          w.key(trace::stage_name(trace::stage_at(i)))
              .value(p.stage_sum_ns[i]);
      w.end_object();
      if (p.has_forecast) {
        w.key("forecast").begin_object();
        w.key("horizon_ticks").value(p.fc_horizon_ticks);
        w.key("p99_ns").value(p.fc_p99_ns);
        w.key("p999_ns").value(p.fc_p999_ns);
        w.key("confidence").value(p.fc_confidence);
        w.key("actionable").value(p.fc_actionable);
        if (p.fc_stage[0] != '\0') w.key("stage").value(p.fc_stage);
        w.end_object();
      }
      w.end_object();
    }
    w.end_array();
    if (!row.tenants.empty()) {
      w.key("tenants").begin_array();
      for (const TenantTickStats& t : row.tenants) {
        w.begin_object();
        w.key("tenant").value(static_cast<std::uint64_t>(t.tenant));
        w.key("state").value(t.state);
        w.key("arrivals").value(t.arrivals);
        w.key("admitted").value(t.admitted);
        w.key("dropped").value(t.dropped);
        w.key("flow_arrivals").value(t.flow_arrivals);
        w.key("samples").value(t.samples);
        w.key("violations").value(t.violations);
        w.key("p50_ns").value(t.p50_ns);
        w.key("p99_ns").value(t.p99_ns);
        w.key("p999_ns").value(t.p999_ns);
        w.key("max_ns").value(t.max_ns);
        w.end_object();
      }
      w.end_array();
    }
    if (!row.counter_deltas.empty()) {
      w.key("counter_deltas").begin_object();
      for (const auto& [name, delta] : row.counter_deltas)
        w.key(name).value(delta);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our registry keys use
/// dots ("ctrl.quarantines") — map them to underscores.
std::string prom_name(std::string_view key) {
  std::string out = "mdp_";
  for (char c : key)
    out.push_back((std::isalnum(static_cast<unsigned char>(c)) != 0)
                      ? c
                      : '_');
  return out;
}

}  // namespace

std::string SnapshotExporter::to_prometheus() const {
  std::string out;
  auto line = [&out](const std::string& name, const std::string& labels,
                     std::uint64_t v) {
    out += name;
    out += labels;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  };
  if (!rows_.empty()) {
    const TickRow& row = rows_.back();
    out += "# TYPE mdp_telem_tick gauge\n";
    line("mdp_telem_tick", "", row.tick);
    const struct {
      const char* metric;
      std::uint64_t PathTickStats::*field;
    } kWindow[] = {
        {"mdp_telem_window_samples", &PathTickStats::samples},
        {"mdp_telem_window_violations", &PathTickStats::violations},
        {"mdp_telem_window_p50_ns", &PathTickStats::p50_ns},
        {"mdp_telem_window_p99_ns", &PathTickStats::p99_ns},
        {"mdp_telem_window_p999_ns", &PathTickStats::p999_ns},
        {"mdp_telem_window_max_ns", &PathTickStats::max_ns},
    };
    for (const auto& m : kWindow) {
      out += "# TYPE ";
      out += m.metric;
      out += " gauge\n";
      for (const PathTickStats& p : row.paths)
        line(m.metric, "{path=\"" + std::to_string(p.path) + "\"}",
             p.*(m.field));
    }
    // Forecast gauges only exist when the forecast stage fed any — a
    // forecast-disabled run's exposition is unchanged.
    bool any_fc = false;
    for (const PathTickStats& p : row.paths) any_fc |= p.has_forecast;
    if (any_fc) {
      const struct {
        const char* metric;
        std::uint64_t PathTickStats::*field;
      } kForecast[] = {
          {"mdp_telem_forecast_p99_ns", &PathTickStats::fc_p99_ns},
          {"mdp_telem_forecast_p999_ns", &PathTickStats::fc_p999_ns},
          {"mdp_telem_forecast_horizon_ticks",
           &PathTickStats::fc_horizon_ticks},
      };
      for (const auto& m : kForecast) {
        out += "# TYPE ";
        out += m.metric;
        out += " gauge\n";
        for (const PathTickStats& p : row.paths)
          if (p.has_forecast)
            line(m.metric, "{path=\"" + std::to_string(p.path) + "\"}",
                 p.*(m.field));
      }
      out += "# TYPE mdp_telem_forecast_confidence gauge\n";
      for (const PathTickStats& p : row.paths)
        if (p.has_forecast) {
          out += "mdp_telem_forecast_confidence{path=\"" +
                 std::to_string(p.path) + "\"} " +
                 std::to_string(p.fc_confidence) + '\n';
        }
    }
    out += "# TYPE mdp_telem_window_stage_sum_ns gauge\n";
    for (const PathTickStats& p : row.paths)
      for (std::size_t i = 0; i < trace::kNumStages; ++i)
        line("mdp_telem_window_stage_sum_ns",
             "{path=\"" + std::to_string(p.path) + "\",stage=\"" +
                 trace::stage_name(trace::stage_at(i)) + "\"}",
             p.stage_sum_ns[i]);
    if (!row.tenants.empty()) {
      const struct {
        const char* metric;
        std::uint64_t TenantTickStats::*field;
      } kTenant[] = {
          {"mdp_telem_tenant_arrivals", &TenantTickStats::arrivals},
          {"mdp_telem_tenant_admitted", &TenantTickStats::admitted},
          {"mdp_telem_tenant_dropped", &TenantTickStats::dropped},
          {"mdp_telem_tenant_flow_arrivals",
           &TenantTickStats::flow_arrivals},
          {"mdp_telem_tenant_p99_ns", &TenantTickStats::p99_ns},
          {"mdp_telem_tenant_p999_ns", &TenantTickStats::p999_ns},
      };
      for (const auto& m : kTenant) {
        out += "# TYPE ";
        out += m.metric;
        out += " gauge\n";
        for (const TenantTickStats& t : row.tenants)
          line(m.metric,
               "{tenant=\"" + std::to_string(t.tenant) + "\",state=\"" +
                   t.state + "\"}",
               t.*(m.field));
      }
    }
  }
  if (!last_counters_.empty()) {
    for (const auto& [name, value] : last_counters_) {
      const std::string pn = prom_name(name);
      out += "# TYPE " + pn + " counter\n";
      line(pn, "", value);
    }
  }
  return out;
}

}  // namespace mdp::telem
