#include "stats/time_series.hpp"

#include <algorithm>

namespace mdp::stats {

void TimeSeries::ensure(std::size_t idx) {
  if (idx >= buckets_.size()) buckets_.resize(idx + 1);
}

void TimeSeries::observe(std::uint64_t t_ns, double value) {
  std::size_t idx = static_cast<std::size_t>(t_ns / interval_ns_);
  ensure(idx);
  auto& b = buckets_[idx];
  b.sum += value;
  b.max = std::max(b.max, value);
  ++b.count;
}

void TimeSeries::observe_max(std::uint64_t t_ns, double value) {
  std::size_t idx = static_cast<std::size_t>(t_ns / interval_ns_);
  ensure(idx);
  auto& b = buckets_[idx];
  b.use_max = true;
  b.max = std::max(b.max, value);
  b.sum += value;
  ++b.count;
}

std::vector<TimeSeries::Sample> TimeSeries::samples() const {
  std::vector<Sample> out;
  out.reserve(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const auto& b = buckets_[i];
    double v = 0;
    if (b.count > 0)
      v = b.use_max ? b.max : b.sum / static_cast<double>(b.count);
    out.push_back({i * interval_ns_, v, b.count});
  }
  return out;
}

}  // namespace mdp::stats
