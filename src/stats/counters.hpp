// Monotonic counters for data-plane accounting.
//
// Two tiers:
//   EnumCounters — enum-indexed array counters for the *fixed* hot-path
//     set: inc() is one add into a cache-resident slot, no string
//     construction, no map walk. Use these anywhere a counter is bumped
//     per packet.
//   CounterSet — string-keyed map counters for cold / ad-hoc accounting
//     where flexibility beats speed (setup errors, rare events, tooling).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace mdp::stats {

/// Enum-indexed fast counters. `Enum` must be a scoped enum with
/// consecutive values starting at 0 and a trailing `kCount` sentinel.
template <typename Enum>
class EnumCounters {
 public:
  static constexpr std::size_t kSize = static_cast<std::size_t>(Enum::kCount);

  void inc(Enum e, std::uint64_t by = 1) noexcept { v_[index(e)] += by; }
  std::uint64_t get(Enum e) const noexcept { return v_[index(e)]; }
  void reset() noexcept { v_.fill(0); }
  static constexpr std::size_t size() noexcept { return kSize; }

 private:
  static constexpr std::size_t index(Enum e) noexcept {
    return static_cast<std::size_t>(e);
  }
  std::array<std::uint64_t, kSize> v_{};
};

class CounterSet {
 public:
  void inc(const std::string& name, std::uint64_t by = 1) {
    counters_[name] += by;
  }

  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void reset() { counters_.clear(); }

  const std::map<std::string, std::uint64_t>& all() const noexcept {
    return counters_;
  }

  std::string to_string() const {
    std::string out;
    for (const auto& [k, v] : counters_) {
      out += k;
      out += '=';
      out += std::to_string(v);
      out += ' ';
    }
    if (!out.empty()) out.pop_back();
    return out;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace mdp::stats
