// CounterSet: named monotonic counters for data-plane accounting
// (packets in/out, drops, replicas, dedup hits, reorder events, ...).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace mdp::stats {

class CounterSet {
 public:
  void inc(const std::string& name, std::uint64_t by = 1) {
    counters_[name] += by;
  }

  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void reset() { counters_.clear(); }

  const std::map<std::string, std::uint64_t>& all() const noexcept {
    return counters_;
  }

  std::string to_string() const {
    std::string out;
    for (const auto& [k, v] : counters_) {
      out += k;
      out += '=';
      out += std::to_string(v);
      out += ' ';
    }
    if (!out.empty()) out.pop_back();
    return out;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace mdp::stats
