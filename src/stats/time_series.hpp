// TimeSeries: fixed-interval sampled series (queue depth over time, etc.)
// used by the timeline figures. Samples are bucketed by virtual time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mdp::stats {

class TimeSeries {
 public:
  /// @param interval_ns width of one sample bucket.
  explicit TimeSeries(std::uint64_t interval_ns, std::string name = {})
      : interval_ns_(interval_ns), name_(std::move(name)) {}

  /// Record an observation at virtual time `t_ns`. Observations in the
  /// same bucket are averaged.
  void observe(std::uint64_t t_ns, double value);

  /// Record a max-style observation (bucket keeps the maximum).
  void observe_max(std::uint64_t t_ns, double value);

  struct Sample {
    std::uint64_t t_ns;
    double value;
    std::uint64_t count;
  };

  const std::string& name() const noexcept { return name_; }
  std::uint64_t interval_ns() const noexcept { return interval_ns_; }
  std::vector<Sample> samples() const;

 private:
  struct Bucket {
    double sum = 0;
    double max = 0;
    std::uint64_t count = 0;
    bool use_max = false;
  };
  void ensure(std::size_t idx);

  std::uint64_t interval_ns_;
  std::string name_;
  std::vector<Bucket> buckets_;
};

}  // namespace mdp::stats
