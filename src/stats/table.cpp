#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mdp::stats {

namespace {

std::vector<std::size_t> column_widths(
    const std::vector<std::string>& headers,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> w(headers.size(), 0);
  for (std::size_t c = 0; c < headers.size(); ++c) w[c] = headers[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size() && c < w.size(); ++c)
      w[c] = std::max(w[c], row[c].size());
  return w;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_text() const {
  auto w = column_widths(headers_, rows_);
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << cell << std::string(w[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto x : w) total += x + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  os << '|';
  for (const auto& h : headers_) os << ' ' << h << " |";
  os << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c)
      os << ' ' << (c < row.size() ? row[c] : "") << " |";
    os << '\n';
  }
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << csv_escape(headers_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c)
      os << (c ? "," : "") << csv_escape(c < row.size() ? row[c] : "");
    os << '\n';
  }
  return os.str();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace mdp::stats
