// LatencyHistogram: HDR-histogram-style log-linear bucketing.
//
// Values (nanoseconds) are bucketed with a bounded relative error: each
// power-of-two range is split into 2^kSubBits linear sub-buckets, so the
// relative quantization error is at most 2^-kSubBits. Recording is O(1),
// memory is a few KB, and percentile queries walk the bucket array once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mdp::stats {

class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 7;   // 128 sub-buckets => <0.8% error
  static constexpr unsigned kMaxExp = 40;   // covers up to ~1100 s in ns

  LatencyHistogram();

  void record(std::uint64_t value_ns) noexcept;
  void record_n(std::uint64_t value_ns, std::uint64_t count) noexcept;

  /// Merge another histogram into this one (bucket-wise add).
  void merge(const LatencyHistogram& other) noexcept;

  /// Bucket-wise subtract an *earlier snapshot of this histogram* — the
  /// interval view used by StatsRegistry::diff. `earlier` must be a prefix
  /// of this histogram's recording history (every bucket <=). count/sum are
  /// exact; min/max are re-derived from the surviving buckets, so they
  /// carry the usual bucket quantization error.
  void subtract(const LatencyHistogram& earlier) noexcept;

  void reset() noexcept;

  std::uint64_t count() const noexcept { return count_; }
  /// Exact sum of all recorded values (ns).
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Value at quantile q in [0,1]; e.g. q=0.999 for p99.9. Returns the
  /// upper edge of the containing bucket (pessimistic, bounded error).
  std::uint64_t quantile(double q) const noexcept;

  std::uint64_t p50() const noexcept { return quantile(0.50); }
  std::uint64_t p90() const noexcept { return quantile(0.90); }
  std::uint64_t p99() const noexcept { return quantile(0.99); }
  std::uint64_t p999() const noexcept { return quantile(0.999); }
  std::uint64_t p9999() const noexcept { return quantile(0.9999); }

  /// CDF sample points (value_ns, cumulative_fraction) for plotting;
  /// only non-empty buckets are emitted.
  std::vector<std::pair<std::uint64_t, double>> cdf() const;

  /// One-line human summary: count/mean/p50/p99/p999/max.
  std::string summary() const;

 private:
  static std::size_t bucket_index(std::uint64_t v) noexcept;
  static std::uint64_t bucket_upper(std::size_t idx) noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

/// Convenience formatting: 1234 -> "1.2us", 1234567 -> "1.2ms".
std::string format_ns(std::uint64_t ns);

}  // namespace mdp::stats
