// Cache-line geometry for hot-path data layout.
//
// kCacheLineSize is std::hardware_destructive_interference_size when the
// toolchain provides it (the span two threads must not share without
// paying coherence traffic), else the x86-64/ARM64 conventional 64.
// PaddedAtomicU64 places one counter per line so adjacent per-path
// counters written by different threads (the collector's completion
// counts, the monitor's window accumulators) never false-share — the
// ROADMAP false-sharing item, quantified by tab4's padded-vs-packed rows.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace mdp::stats {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLineSize =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLineSize = 64;
#endif

/// One 64-bit atomic counter alone on its destructive-interference line.
/// Drop-in for arrays of adjacent hot counters written from different
/// threads; costs kCacheLineSize bytes per counter instead of 8.
struct alignas(kCacheLineSize) PaddedAtomicU64 {
  std::atomic<std::uint64_t> v{0};
};

static_assert(sizeof(PaddedAtomicU64) >= kCacheLineSize,
              "padding must cover a full interference line");
static_assert(alignof(PaddedAtomicU64) == kCacheLineSize,
              "each counter must start on its own line");

}  // namespace mdp::stats
