#include "stats/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace mdp::stats {

// Bucket layout. Let S = 2^kSubBits.
//   - values in [0, S)             : one exact bucket per value, index = v
//   - values in [S*2^e, S*2^(e+1)) : S linear sub-buckets of width 2^e,
//                                    index = S*(e+1) + ((v >> e) - S)
// Relative quantization error is therefore bounded by 2^-kSubBits.
namespace {
constexpr std::size_t kSub = std::size_t{1} << LatencyHistogram::kSubBits;
constexpr std::size_t kNumBuckets =
    kSub * (LatencyHistogram::kMaxExp + 2);
}  // namespace

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

std::size_t LatencyHistogram::bucket_index(std::uint64_t v) noexcept {
  if (v < kSub) return static_cast<std::size_t>(v);
  unsigned msb = 63 - static_cast<unsigned>(std::countl_zero(v));
  unsigned e = msb - kSubBits;
  if (e > kMaxExp) e = kMaxExp;
  std::uint64_t sub = (v >> e) - kSub;
  if (sub >= kSub) sub = kSub - 1;  // only when e was clamped
  return kSub * (std::size_t{e} + 1) + static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t idx) noexcept {
  if (idx < kSub) return idx;
  std::size_t e = idx / kSub - 1;
  std::uint64_t sub = idx % kSub;
  return ((kSub + sub + 1) << e) - 1;
}

void LatencyHistogram::record(std::uint64_t v) noexcept { record_n(v, 1); }

void LatencyHistogram::record_n(std::uint64_t v, std::uint64_t n) noexcept {
  if (n == 0) return;
  buckets_[bucket_index(v)] += n;
  count_ += n;
  sum_ += v * n;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::subtract(const LatencyHistogram& earlier) noexcept {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    std::uint64_t take = std::min(buckets_[i], earlier.buckets_[i]);
    buckets_[i] -= take;
  }
  count_ = count_ >= earlier.count_ ? count_ - earlier.count_ : 0;
  sum_ = sum_ >= earlier.sum_ ? sum_ - earlier.sum_ : 0;
  // Re-derive extrema from bucket edges (quantized).
  min_ = UINT64_MAX;
  max_ = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (min_ == UINT64_MAX) min_ = i < kSub ? i : bucket_upper(i);
    max_ = bucket_upper(i);
  }
  if (count_ == 0) {
    min_ = UINT64_MAX;
    max_ = 0;
  }
}

void LatencyHistogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

std::uint64_t LatencyHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum > target) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

std::vector<std::pair<std::uint64_t, double>> LatencyHistogram::cdf() const {
  std::vector<std::pair<std::uint64_t, double>> out;
  if (count_ == 0) return out;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    cum += buckets_[i];
    out.emplace_back(bucket_upper(i),
                     static_cast<double>(cum) / static_cast<double>(count_));
  }
  return out;
}

std::string LatencyHistogram::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%s p50=%s p99=%s p999=%s max=%s",
                static_cast<unsigned long long>(count_),
                format_ns(static_cast<std::uint64_t>(mean())).c_str(),
                format_ns(p50()).c_str(), format_ns(p99()).c_str(),
                format_ns(p999()).c_str(), format_ns(max()).c_str());
  return buf;
}

std::string format_ns(std::uint64_t ns) {
  char buf[64];
  if (ns < 1000) {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  } else if (ns < 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

}  // namespace mdp::stats
