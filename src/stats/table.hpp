// Table: tiny column-aligned table builder for experiment output, with
// markdown and CSV renderers. Every bench binary prints its figure/table
// through this so the output format is uniform and machine-scrapable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mdp::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_cols() const noexcept { return headers_.size(); }
  const std::vector<std::string>& headers() const noexcept { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Space-padded fixed-width text (for terminals).
  std::string to_text() const;
  /// GitHub-flavoured markdown.
  std::string to_markdown() const;
  /// RFC-4180-ish CSV (fields containing commas/quotes get quoted).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helpers for building cells.
std::string fmt_double(double v, int precision = 2);
std::string fmt_u64(std::uint64_t v);
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace mdp::stats
