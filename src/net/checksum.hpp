// RFC 1071 internet checksum plus RFC 1624 incremental update, as used by
// NAT and TTL-decrement elements to avoid full recomputation per packet.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mdp::net {

/// One's-complement sum over `len` bytes (not folded/inverted).
std::uint32_t checksum_partial(const std::byte* data, std::size_t len,
                               std::uint32_t sum = 0) noexcept;

/// Fold a partial sum and invert: the final 16-bit checksum value.
std::uint16_t checksum_fold(std::uint32_t sum) noexcept;

/// Full checksum of a buffer.
std::uint16_t checksum(const std::byte* data, std::size_t len) noexcept;

/// RFC 1624 incremental update: new checksum after a 16-bit word changes
/// from `old_word` to `new_word`, given the current checksum `old_csum`.
std::uint16_t checksum_update16(std::uint16_t old_csum, std::uint16_t old_word,
                                std::uint16_t new_word) noexcept;

/// Incremental update for a 32-bit field change (e.g. an IPv4 address).
std::uint16_t checksum_update32(std::uint16_t old_csum, std::uint32_t old_val,
                                std::uint32_t new_val) noexcept;

/// IPv4 pseudo-header partial sum for TCP/UDP checksums.
std::uint32_t pseudo_header_sum(std::uint32_t src_ip, std::uint32_t dst_ip,
                                std::uint8_t protocol,
                                std::uint16_t l4_len) noexcept;

}  // namespace mdp::net
