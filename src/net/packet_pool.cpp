#include "net/packet_pool.hpp"

#include <new>

namespace mdp::net {

void PoolDeleter::operator()(Packet* p) const noexcept {
  if (p != nullptr && p->pool() != nullptr) p->pool()->recycle(p);
}

PacketPool::PacketPool(std::size_t num_packets, std::size_t buf_capacity,
                       bool allow_growth)
    : buf_capacity_(buf_capacity), allow_growth_(allow_growth) {
  if (num_packets > 0) add_slab(num_packets);
}

PacketPool::~PacketPool() = default;

void PacketPool::add_slab(std::size_t num_packets) {
  Slab slab;
  slab.count = num_packets;
  slab.buffers = std::make_unique<std::byte[]>(num_packets * buf_capacity_);
  slab.packets =
      std::make_unique<std::byte[]>(num_packets * sizeof(Packet));
  free_list_.reserve(free_list_.size() + num_packets);
  for (std::size_t i = 0; i < num_packets; ++i) {
    auto* storage = slab.packets.get() + i * sizeof(Packet);
    auto* buf = slab.buffers.get() + i * buf_capacity_;
    auto* pkt = new (storage) Packet(buf, buf_capacity_, this);
    free_list_.push_back(pkt);
  }
  total_ += num_packets;
  slabs_.push_back(std::move(slab));
}

PacketPtr PacketPool::alloc() {
  if (free_list_.empty()) {
    if (!allow_growth_) return PacketPtr{nullptr};
    add_slab(total_ > 0 ? total_ : 64);  // double the pool
  }
  Packet* p = free_list_.back();
  free_list_.pop_back();
  p->reset();
  ++allocs_;
  return PacketPtr{p};
}

PacketPtr PacketPool::clone(const Packet& src) {
  PacketPtr copy = alloc();
  if (!copy) return copy;
  copy->assign(src.payload());
  copy->anno() = src.anno();
  return copy;
}

void PacketPool::recycle(Packet* p) noexcept {
  ++recycles_;
  free_list_.push_back(p);
}

}  // namespace mdp::net
