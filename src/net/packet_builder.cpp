#include "net/packet_builder.hpp"

#include <cstring>

#include "net/checksum.hpp"

namespace mdp::net {

std::optional<ParsedPacket> parse(const Packet& pkt) {
  const std::byte* base = pkt.data();
  std::size_t len = pkt.length();
  if (len < kEthernetHeaderLen) return std::nullopt;

  EthernetView eth(const_cast<std::byte*>(base));
  std::size_t l3 = kEthernetHeaderLen;
  if (eth.ether_type() != kEtherTypeIpv4) return std::nullopt;
  if (len < l3 + kIpv4MinHeaderLen) return std::nullopt;

  Ipv4View ip(const_cast<std::byte*>(base + l3));
  if (ip.version() != 4) return std::nullopt;
  std::size_t ihl = ip.header_len();
  if (ihl < kIpv4MinHeaderLen || len < l3 + ihl) return std::nullopt;

  ParsedPacket out;
  out.l3_offset = l3;
  out.l4_offset = l3 + ihl;
  out.flow.src_ip = ip.src();
  out.flow.dst_ip = ip.dst();
  out.flow.protocol = ip.protocol();

  if (ip.protocol() == kIpProtoTcp && len >= out.l4_offset + kTcpMinHeaderLen) {
    TcpView tcp(const_cast<std::byte*>(base + out.l4_offset));
    out.flow.src_port = tcp.src_port();
    out.flow.dst_port = tcp.dst_port();
    std::size_t hl = std::size_t{tcp.data_offset()} * 4;
    if (hl < kTcpMinHeaderLen || len < out.l4_offset + hl) return std::nullopt;
    out.payload_offset = out.l4_offset + hl;
    out.has_l4 = true;
  } else if (ip.protocol() == kIpProtoUdp &&
             len >= out.l4_offset + kUdpHeaderLen) {
    UdpView udp(const_cast<std::byte*>(base + out.l4_offset));
    out.flow.src_port = udp.src_port();
    out.flow.dst_port = udp.dst_port();
    out.payload_offset = out.l4_offset + kUdpHeaderLen;
    out.has_l4 = true;
  } else {
    out.payload_offset = out.l4_offset;
  }
  out.payload_len = len - out.payload_offset;
  return out;
}

bool validate_ipv4_csum(const Packet& pkt, const ParsedPacket& info) {
  Ipv4View ip(const_cast<std::byte*>(pkt.data() + info.l3_offset));
  // Checksum over the header including the stored checksum folds to 0.
  return checksum(pkt.data() + info.l3_offset, ip.header_len()) == 0;
}

void write_ipv4_csum(Packet& pkt, std::size_t l3_offset) {
  Ipv4View ip(pkt.data() + l3_offset);
  ip.set_checksum(0);
  ip.set_checksum(checksum(pkt.data() + l3_offset, ip.header_len()));
}

namespace {

PacketPtr build_l4(PacketPool& pool, const BuildSpec& spec,
                   std::uint8_t protocol) {
  std::size_t l4_len = (protocol == kIpProtoTcp) ? kTcpMinHeaderLen
                                                 : kUdpHeaderLen;
  std::size_t total = kEthernetHeaderLen + kIpv4MinHeaderLen + l4_len +
                      spec.payload_len;
  PacketPtr pkt = pool.alloc();
  if (!pkt || !pkt->set_length(total)) return PacketPtr{nullptr};

  std::byte* base = pkt->data();
  EthernetView eth(base);
  eth.set_dst(spec.dst_mac);
  eth.set_src(spec.src_mac);
  eth.set_ether_type(kEtherTypeIpv4);

  std::size_t l3 = kEthernetHeaderLen;
  Ipv4View ip(base + l3);
  ip.set_version_ihl(4, 5);
  base[l3 + 1] = std::byte{0};
  ip.set_dscp(spec.dscp);
  ip.set_total_length(
      static_cast<std::uint16_t>(total - kEthernetHeaderLen));
  ip.set_id(0);
  ip.set_flags_frag(0x4000);  // DF
  ip.set_ttl(spec.ttl);
  ip.set_protocol(protocol);
  ip.set_checksum(0);
  ip.set_src(spec.flow.src_ip);
  ip.set_dst(spec.flow.dst_ip);

  std::size_t l4 = l3 + kIpv4MinHeaderLen;
  std::uint16_t l4_total = static_cast<std::uint16_t>(l4_len + spec.payload_len);
  if (protocol == kIpProtoTcp) {
    TcpView tcp(base + l4);
    tcp.set_src_port(spec.flow.src_port);
    tcp.set_dst_port(spec.flow.dst_port);
    tcp.set_seq(spec.tcp_seq);
    tcp.set_ack(0);
    tcp.set_data_offset(5);
    tcp.set_flags(spec.tcp_flags);
    tcp.set_window(0xffff);
    tcp.set_checksum(0);
    store_be16(base + l4 + 18, 0);  // urgent pointer
  } else {
    UdpView udp(base + l4);
    udp.set_src_port(spec.flow.src_port);
    udp.set_dst_port(spec.flow.dst_port);
    udp.set_length(l4_total);
    udp.set_checksum(0);
  }

  std::memset(base + l4 + l4_len, spec.payload_fill, spec.payload_len);

  // L4 checksum over pseudo header + segment.
  std::uint32_t sum = pseudo_header_sum(spec.flow.src_ip, spec.flow.dst_ip,
                                        protocol, l4_total);
  sum = checksum_partial(base + l4, l4_total, sum);
  std::uint16_t l4_csum = checksum_fold(sum);
  if (protocol == kIpProtoTcp) {
    TcpView(base + l4).set_checksum(l4_csum);
  } else {
    // UDP checksum of 0 means "no checksum"; transmit 0xffff instead.
    UdpView(base + l4).set_checksum(l4_csum == 0 ? 0xffff : l4_csum);
  }

  write_ipv4_csum(*pkt, l3);

  auto& a = pkt->anno();
  a.flow_hash = hash_flow(spec.flow);
  return pkt;
}

}  // namespace

PacketPtr build_udp(PacketPool& pool, const BuildSpec& spec) {
  BuildSpec s = spec;
  s.flow.protocol = kIpProtoUdp;
  return build_l4(pool, s, kIpProtoUdp);
}

PacketPtr build_tcp(PacketPool& pool, const BuildSpec& spec) {
  BuildSpec s = spec;
  s.flow.protocol = kIpProtoTcp;
  return build_l4(pool, s, kIpProtoTcp);
}

std::size_t frame_length(const BuildSpec& spec, std::uint8_t protocol) {
  std::size_t l4 = (protocol == kIpProtoTcp) ? kTcpMinHeaderLen
                                             : kUdpHeaderLen;
  return kEthernetHeaderLen + kIpv4MinHeaderLen + l4 + spec.payload_len;
}

}  // namespace mdp::net
