// Tenant identity: who a packet belongs to (docs/TENANCY.md).
//
// A TenantId is carried in the packet annotation area
// (net::Annotations::tenant_id) and derived from the 5-tuple by the
// TenantClassifier — longest-prefix match on the source address, the same
// way a provider edge maps customer address blocks to accounts. Tenant 0
// is the implicit default every packet belongs to until classified, which
// is what keeps single-tenant planes (every PR before tenancy landed)
// byte-for-byte unchanged: an empty classifier maps everything to 0.
//
// Ids are expected to be small and dense (they index per-tenant window
// groups in ctrl::TenantAdmission and occupancy counters in
// nf::FlowTable), not sparse cookies.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "net/flow_key.hpp"

namespace mdp::net {

using TenantId = std::uint16_t;

/// The implicit tenant of unclassified traffic.
inline constexpr TenantId kDefaultTenant = 0;

/// Source-prefix -> tenant mapping, longest prefix wins. Rule count is
/// expected to stay small (one or a few blocks per tenant class), so
/// classification is a linear scan over rules sorted most-specific first.
class TenantClassifier {
 public:
  struct Rule {
    std::uint32_t src_ip = 0;    // host order, pre-masked
    std::uint32_t mask = 0;      // host order
    TenantId tenant = kDefaultTenant;
  };

  /// Map src addresses matching `src_ip/mask` to `tenant`. Among rules
  /// matching the same address the longest mask wins; ties go to the rule
  /// added first.
  void add_rule(std::uint32_t src_ip, std::uint32_t mask, TenantId tenant) {
    Rule r{src_ip & mask, mask, tenant};
    auto it = rules_.begin();
    while (it != rules_.end() &&
           std::popcount(it->mask) >= std::popcount(mask))
      ++it;
    rules_.insert(it, r);
  }

  /// Convenience: /prefix_len form.
  void add_prefix(std::uint32_t src_ip, int prefix_len, TenantId tenant) {
    const std::uint32_t mask =
        prefix_len <= 0 ? 0u
                        : (prefix_len >= 32
                               ? 0xffffffffu
                               : ~((1u << (32 - prefix_len)) - 1u));
    add_rule(src_ip, mask, tenant);
  }

  TenantId classify(const FlowKey& k) const noexcept {
    for (const Rule& r : rules_)
      if ((k.src_ip & r.mask) == r.src_ip) return r.tenant;
    return kDefaultTenant;
  }

  std::size_t num_rules() const noexcept { return rules_.size(); }
  bool empty() const noexcept { return rules_.empty(); }

 private:
  std::vector<Rule> rules_;  // sorted most-specific first
};

}  // namespace mdp::net
