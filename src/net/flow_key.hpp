// FlowKey: the classic 5-tuple, plus the hash used for RSS/ECMP-style path
// selection. Hashing must be stable (same flow -> same path under RssHash)
// and well mixed; we use a 64-bit fmix-style finalizer over the tuple.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace mdp::net {

struct FlowKey {
  std::uint32_t src_ip = 0;   // host order
  std::uint32_t dst_ip = 0;   // host order
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  /// Canonical direction-insensitive form (orders endpoints) — useful for
  /// connection tracking where both directions map to one entry.
  FlowKey canonical() const noexcept {
    FlowKey k = *this;
    if (src_ip > dst_ip || (src_ip == dst_ip && src_port > dst_port)) {
      std::swap(k.src_ip, k.dst_ip);
      std::swap(k.src_port, k.dst_port);
    }
    return k;
  }

  /// Reverse-direction key (for NAT return traffic lookups).
  FlowKey reversed() const noexcept {
    return FlowKey{dst_ip, src_ip, dst_port, src_port, protocol};
  }

  std::string to_string() const;
};

/// 64-bit avalanche mix (MurmurHash3 finalizer).
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Stable 5-tuple hash. Seed lets different components (RSS vs dedupe)
/// decorrelate their bucket assignment.
inline std::uint64_t hash_flow(const FlowKey& k,
                               std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    noexcept {
  std::uint64_t h = seed;
  h = mix64(h ^ ((std::uint64_t{k.src_ip} << 32) | k.dst_ip));
  h = mix64(h ^ ((std::uint64_t{k.src_port} << 32) |
                 (std::uint64_t{k.dst_port} << 16) | k.protocol));
  return h;
}

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const noexcept {
    return static_cast<std::size_t>(hash_flow(k));
  }
};

}  // namespace mdp::net
