// Protocol header views: Ethernet, IPv4, TCP, UDP.
//
// Each view wraps a byte pointer into a Packet and exposes typed, byte-order
// correct accessors. Views never own memory and are cheap to construct; the
// caller is responsible for bounds (use Packet::length() / parse helpers in
// packet_builder.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "net/byte_order.hpp"

namespace mdp::net {

using MacAddress = std::array<std::uint8_t, 6>;

constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::uint16_t kEtherTypeArp = 0x0806;
constexpr std::uint16_t kEtherTypeVlan = 0x8100;

constexpr std::uint8_t kIpProtoIcmp = 1;
constexpr std::uint8_t kIpProtoTcp = 6;
constexpr std::uint8_t kIpProtoUdp = 17;

constexpr std::size_t kEthernetHeaderLen = 14;
constexpr std::size_t kIpv4MinHeaderLen = 20;
constexpr std::size_t kTcpMinHeaderLen = 20;
constexpr std::size_t kUdpHeaderLen = 8;

/// Render "a.b.c.d" for a host-order IPv4 address.
std::string ipv4_to_string(std::uint32_t addr_host_order);
/// Parse "a.b.c.d" into host order; returns false on malformed input.
bool ipv4_from_string(const std::string& s, std::uint32_t* out);

// ---------------------------------------------------------------------------
class EthernetView {
 public:
  explicit EthernetView(std::byte* base) noexcept : base_(base) {}

  MacAddress dst() const noexcept { return read_mac(0); }
  MacAddress src() const noexcept { return read_mac(6); }
  std::uint16_t ether_type() const noexcept { return load_be16(base_ + 12); }

  void set_dst(const MacAddress& m) noexcept { write_mac(0, m); }
  void set_src(const MacAddress& m) noexcept { write_mac(6, m); }
  void set_ether_type(std::uint16_t t) noexcept { store_be16(base_ + 12, t); }

 private:
  MacAddress read_mac(std::size_t off) const noexcept {
    MacAddress m;
    for (std::size_t i = 0; i < 6; ++i)
      m[i] = std::to_integer<std::uint8_t>(base_[off + i]);
    return m;
  }
  void write_mac(std::size_t off, const MacAddress& m) noexcept {
    for (std::size_t i = 0; i < 6; ++i)
      base_[off + i] = static_cast<std::byte>(m[i]);
  }
  std::byte* base_;
};

// ---------------------------------------------------------------------------
class Ipv4View {
 public:
  explicit Ipv4View(std::byte* base) noexcept : base_(base) {}

  std::uint8_t version() const noexcept {
    return std::to_integer<std::uint8_t>(base_[0]) >> 4;
  }
  std::uint8_t ihl() const noexcept {  // header length in 32-bit words
    return std::to_integer<std::uint8_t>(base_[0]) & 0x0f;
  }
  std::size_t header_len() const noexcept { return std::size_t{ihl()} * 4; }
  std::uint8_t dscp() const noexcept {
    return std::to_integer<std::uint8_t>(base_[1]) >> 2;
  }
  std::uint16_t total_length() const noexcept { return load_be16(base_ + 2); }
  std::uint16_t id() const noexcept { return load_be16(base_ + 4); }
  std::uint8_t ttl() const noexcept {
    return std::to_integer<std::uint8_t>(base_[8]);
  }
  std::uint8_t protocol() const noexcept {
    return std::to_integer<std::uint8_t>(base_[9]);
  }
  std::uint16_t checksum() const noexcept { return load_be16(base_ + 10); }
  std::uint32_t src() const noexcept { return load_be32(base_ + 12); }
  std::uint32_t dst() const noexcept { return load_be32(base_ + 16); }

  void set_version_ihl(std::uint8_t version, std::uint8_t ihl) noexcept {
    base_[0] = static_cast<std::byte>((version << 4) | (ihl & 0x0f));
  }
  void set_dscp(std::uint8_t d) noexcept {
    auto b = std::to_integer<std::uint8_t>(base_[1]);
    base_[1] = static_cast<std::byte>((d << 2) | (b & 0x03));
  }
  void set_total_length(std::uint16_t v) noexcept { store_be16(base_ + 2, v); }
  void set_id(std::uint16_t v) noexcept { store_be16(base_ + 4, v); }
  void set_flags_frag(std::uint16_t v) noexcept { store_be16(base_ + 6, v); }
  void set_ttl(std::uint8_t v) noexcept { base_[8] = static_cast<std::byte>(v); }
  void set_protocol(std::uint8_t v) noexcept {
    base_[9] = static_cast<std::byte>(v);
  }
  void set_checksum(std::uint16_t v) noexcept { store_be16(base_ + 10, v); }
  void set_src(std::uint32_t v) noexcept { store_be32(base_ + 12, v); }
  void set_dst(std::uint32_t v) noexcept { store_be32(base_ + 16, v); }

  const std::byte* raw() const noexcept { return base_; }
  std::byte* raw() noexcept { return base_; }

 private:
  std::byte* base_;
};

// ---------------------------------------------------------------------------
class TcpView {
 public:
  explicit TcpView(std::byte* base) noexcept : base_(base) {}

  std::uint16_t src_port() const noexcept { return load_be16(base_); }
  std::uint16_t dst_port() const noexcept { return load_be16(base_ + 2); }
  std::uint32_t seq() const noexcept { return load_be32(base_ + 4); }
  std::uint32_t ack() const noexcept { return load_be32(base_ + 8); }
  std::uint8_t data_offset() const noexcept {  // in 32-bit words
    return std::to_integer<std::uint8_t>(base_[12]) >> 4;
  }
  std::uint8_t flags() const noexcept {
    return std::to_integer<std::uint8_t>(base_[13]);
  }
  std::uint16_t window() const noexcept { return load_be16(base_ + 14); }
  std::uint16_t checksum() const noexcept { return load_be16(base_ + 16); }

  void set_src_port(std::uint16_t v) noexcept { store_be16(base_, v); }
  void set_dst_port(std::uint16_t v) noexcept { store_be16(base_ + 2, v); }
  void set_seq(std::uint32_t v) noexcept { store_be32(base_ + 4, v); }
  void set_ack(std::uint32_t v) noexcept { store_be32(base_ + 8, v); }
  void set_data_offset(std::uint8_t words) noexcept {
    base_[12] = static_cast<std::byte>(words << 4);
  }
  void set_flags(std::uint8_t v) noexcept {
    base_[13] = static_cast<std::byte>(v);
  }
  void set_window(std::uint16_t v) noexcept { store_be16(base_ + 14, v); }
  void set_checksum(std::uint16_t v) noexcept { store_be16(base_ + 16, v); }

  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;

 private:
  std::byte* base_;
};

// ---------------------------------------------------------------------------
class UdpView {
 public:
  explicit UdpView(std::byte* base) noexcept : base_(base) {}

  std::uint16_t src_port() const noexcept { return load_be16(base_); }
  std::uint16_t dst_port() const noexcept { return load_be16(base_ + 2); }
  std::uint16_t length() const noexcept { return load_be16(base_ + 4); }
  std::uint16_t checksum() const noexcept { return load_be16(base_ + 6); }

  void set_src_port(std::uint16_t v) noexcept { store_be16(base_, v); }
  void set_dst_port(std::uint16_t v) noexcept { store_be16(base_ + 2, v); }
  void set_length(std::uint16_t v) noexcept { store_be16(base_ + 4, v); }
  void set_checksum(std::uint16_t v) noexcept { store_be16(base_ + 6, v); }

 private:
  std::byte* base_;
};

}  // namespace mdp::net
