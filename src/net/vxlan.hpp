// VXLAN (RFC 7348) encapsulation — the overlay that actually carries
// tenant traffic in a virtualized network. The last-mile pipeline of a
// real vSwitch encapsulates/decapsulates every frame; the cost and the
// header arithmetic are part of the reproduction.
//
// Outer layout: Ethernet / IPv4 / UDP(dst 4789) / VXLAN(8B) / inner frame.
#pragma once

#include <cstdint>
#include <optional>

#include "net/headers.hpp"
#include "net/packet.hpp"

namespace mdp::net {

constexpr std::uint16_t kVxlanPort = 4789;
constexpr std::size_t kVxlanHeaderLen = 8;
/// Full overhead prepended by encapsulation.
constexpr std::size_t kVxlanOverhead =
    kEthernetHeaderLen + kIpv4MinHeaderLen + kUdpHeaderLen +
    kVxlanHeaderLen;

class VxlanView {
 public:
  explicit VxlanView(std::byte* base) noexcept : base_(base) {}

  /// I flag (bit 3 of the first byte) must be set for a valid VNI.
  bool valid() const noexcept {
    return (std::to_integer<std::uint8_t>(base_[0]) & 0x08) != 0;
  }
  std::uint32_t vni() const noexcept {
    return (std::to_integer<std::uint32_t>(base_[4]) << 16) |
           (std::to_integer<std::uint32_t>(base_[5]) << 8) |
           std::to_integer<std::uint32_t>(base_[6]);
  }
  void init(std::uint32_t vni) noexcept {
    base_[0] = std::byte{0x08};
    base_[1] = base_[2] = base_[3] = std::byte{0};
    base_[4] = static_cast<std::byte>((vni >> 16) & 0xff);
    base_[5] = static_cast<std::byte>((vni >> 8) & 0xff);
    base_[6] = static_cast<std::byte>(vni & 0xff);
    base_[7] = std::byte{0};
  }

 private:
  std::byte* base_;
};

struct VxlanTunnel {
  std::uint32_t local_vtep = 0;   ///< outer src IP (host order)
  std::uint32_t remote_vtep = 0;  ///< outer dst IP
  std::uint32_t vni = 0;
  MacAddress local_mac{{0x02, 0, 0, 0, 0, 0x10}};
  MacAddress remote_mac{{0x02, 0, 0, 0, 0, 0x20}};
};

/// Prepend the full outer stack in the packet's headroom. Returns false if
/// headroom is insufficient. Outer UDP checksum is 0 (permitted for
/// VXLAN); outer src port is derived from the inner flow hash so the
/// underlay can ECMP.
bool vxlan_encap(Packet& pkt, const VxlanTunnel& tunnel);

struct VxlanInfo {
  std::uint32_t vni = 0;
  std::uint32_t outer_src = 0;
  std::uint32_t outer_dst = 0;
  std::uint16_t outer_src_port = 0;
};

/// Validate and strip the outer stack, leaving the inner frame at the
/// front. Returns the decap info, or nullopt (packet untouched) when the
/// packet is not well-formed VXLAN-in-IPv4.
std::optional<VxlanInfo> vxlan_decap(Packet& pkt);

}  // namespace mdp::net
