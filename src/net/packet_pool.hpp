// PacketPool: slab allocator for Packet objects, in the style of DPDK's
// mempool. Allocation and free are O(1) (free-list pop/push); clone() deep
// copies payload + annotations for redundant multipath transmission.
//
// The pool is single-threaded by design (each simulated host owns one); the
// real-thread data plane uses one pool per producer thread.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "net/packet.hpp"

namespace mdp::net {

class PacketPool;

/// Deleter that returns the packet to its owning pool instead of freeing.
struct PoolDeleter {
  void operator()(Packet* p) const noexcept;
};

/// Owning handle for a pool packet. Dropping the handle recycles the buffer.
using PacketPtr = std::unique_ptr<Packet, PoolDeleter>;

class PacketPool {
 public:
  /// @param num_packets  pool population (grows on demand if exhausted and
  ///                     `allow_growth` is true)
  /// @param buf_capacity per-packet buffer size in bytes
  explicit PacketPool(std::size_t num_packets = 1024,
                      std::size_t buf_capacity = 2048,
                      bool allow_growth = true);

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  ~PacketPool();

  /// Allocate a pristine packet. Returns nullptr handle if the pool is
  /// exhausted and growth is disabled.
  PacketPtr alloc();

  /// Deep-copy `src` (payload bytes + annotations). Used by Redundant and
  /// hedging policies to create path copies.
  PacketPtr clone(const Packet& src);

  /// Return a raw packet to the free list (normally via PoolDeleter).
  void recycle(Packet* p) noexcept;

  std::size_t capacity() const noexcept { return total_; }
  std::size_t available() const noexcept { return free_list_.size(); }
  std::size_t in_use() const noexcept { return total_ - free_list_.size(); }
  std::size_t buf_capacity() const noexcept { return buf_capacity_; }

  /// Lifetime counters, used by leak-detection property tests.
  std::uint64_t total_allocs() const noexcept { return allocs_; }
  std::uint64_t total_recycles() const noexcept { return recycles_; }

 private:
  void add_slab(std::size_t num_packets);

  std::size_t buf_capacity_;
  bool allow_growth_;
  std::size_t total_ = 0;
  std::uint64_t allocs_ = 0;
  std::uint64_t recycles_ = 0;

  struct Slab {
    std::unique_ptr<std::byte[]> buffers;
    std::unique_ptr<std::byte[]> packets;  // raw storage for Packet objects
    std::size_t count = 0;
  };
  std::vector<Slab> slabs_;
  std::vector<Packet*> free_list_;
};

}  // namespace mdp::net
