// Packet construction and parsing helpers.
//
// build_udp/build_tcp synthesize a full Ethernet/IPv4/L4 frame in a pool
// packet with correct lengths and checksums; parse() walks the headers and
// extracts the 5-tuple plus offsets for the NF elements.
#pragma once

#include <cstdint>
#include <optional>

#include "net/flow_key.hpp"
#include "net/headers.hpp"
#include "net/packet.hpp"
#include "net/packet_pool.hpp"

namespace mdp::net {

/// Result of walking the protocol headers of a packet.
struct ParsedPacket {
  FlowKey flow;
  std::size_t l3_offset = 0;  ///< byte offset of the IPv4 header
  std::size_t l4_offset = 0;  ///< byte offset of the TCP/UDP header
  std::size_t payload_offset = 0;
  std::size_t payload_len = 0;
  bool has_l4 = false;
};

/// Parse Ethernet/IPv4/{TCP,UDP}. Returns nullopt for truncated or
/// non-IPv4 packets. Does not validate checksums (see validate_ipv4_csum).
std::optional<ParsedPacket> parse(const Packet& pkt);

/// True if the IPv4 header checksum of a parsed packet verifies.
bool validate_ipv4_csum(const Packet& pkt, const ParsedPacket& info);

/// Recompute and install the IPv4 header checksum.
void write_ipv4_csum(Packet& pkt, std::size_t l3_offset);

struct BuildSpec {
  FlowKey flow;
  std::size_t payload_len = 64;
  std::uint8_t ttl = 64;
  std::uint8_t dscp = 0;
  std::uint8_t tcp_flags = TcpView::kAck;  // TCP only
  std::uint32_t tcp_seq = 0;               // TCP only
  std::uint8_t payload_fill = 0x5a;
  MacAddress src_mac{{0x02, 0, 0, 0, 0, 0x01}};
  MacAddress dst_mac{{0x02, 0, 0, 0, 0, 0x02}};
};

/// Build a UDP datagram (flow.protocol forced to UDP). Returns null handle
/// if the pool is exhausted or payload exceeds the buffer.
PacketPtr build_udp(PacketPool& pool, const BuildSpec& spec);

/// Build a TCP segment (flow.protocol forced to TCP).
PacketPtr build_tcp(PacketPool& pool, const BuildSpec& spec);

/// Total frame length a BuildSpec will produce (Ethernet..payload).
std::size_t frame_length(const BuildSpec& spec, std::uint8_t protocol);

}  // namespace mdp::net
