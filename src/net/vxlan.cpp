#include "net/vxlan.hpp"

#include "net/checksum.hpp"
#include "net/flow_key.hpp"
#include "net/packet_builder.hpp"

namespace mdp::net {

bool vxlan_encap(Packet& pkt, const VxlanTunnel& tunnel) {
  // Entropy for underlay ECMP: hash the inner flow into the source port.
  std::uint16_t sport = 0xc000;
  if (auto inner = parse(pkt))
    sport = 0xc000 | static_cast<std::uint16_t>(
                         hash_flow(inner->flow) & 0x3fff);

  std::size_t inner_len = pkt.length();
  std::byte* front = pkt.push(kVxlanOverhead);
  if (front == nullptr) return false;

  EthernetView eth(front);
  eth.set_dst(tunnel.remote_mac);
  eth.set_src(tunnel.local_mac);
  eth.set_ether_type(kEtherTypeIpv4);

  std::size_t l3 = kEthernetHeaderLen;
  Ipv4View ip(front + l3);
  ip.set_version_ihl(4, 5);
  front[l3 + 1] = std::byte{0};
  std::uint16_t ip_total = static_cast<std::uint16_t>(
      kIpv4MinHeaderLen + kUdpHeaderLen + kVxlanHeaderLen + inner_len);
  ip.set_total_length(ip_total);
  ip.set_id(0);
  ip.set_flags_frag(0x4000);
  ip.set_ttl(64);
  ip.set_protocol(kIpProtoUdp);
  ip.set_checksum(0);
  ip.set_src(tunnel.local_vtep);
  ip.set_dst(tunnel.remote_vtep);
  ip.set_checksum(checksum(front + l3, kIpv4MinHeaderLen));

  std::size_t l4 = l3 + kIpv4MinHeaderLen;
  UdpView udp(front + l4);
  udp.set_src_port(sport);
  udp.set_dst_port(kVxlanPort);
  udp.set_length(static_cast<std::uint16_t>(kUdpHeaderLen +
                                            kVxlanHeaderLen + inner_len));
  udp.set_checksum(0);  // RFC 7348 allows zero outer UDP checksum

  VxlanView(front + l4 + kUdpHeaderLen).init(tunnel.vni);
  return true;
}

std::optional<VxlanInfo> vxlan_decap(Packet& pkt) {
  auto outer = parse(pkt);
  if (!outer || outer->flow.protocol != kIpProtoUdp) return std::nullopt;
  if (outer->flow.dst_port != kVxlanPort) return std::nullopt;
  if (outer->payload_len < kVxlanHeaderLen + kEthernetHeaderLen)
    return std::nullopt;

  VxlanView vx(pkt.data() + outer->payload_offset);
  if (!vx.valid()) return std::nullopt;

  VxlanInfo info;
  info.vni = vx.vni();
  info.outer_src = outer->flow.src_ip;
  info.outer_dst = outer->flow.dst_ip;
  info.outer_src_port = outer->flow.src_port;

  pkt.pull(outer->payload_offset + kVxlanHeaderLen);
  return info;
}

}  // namespace mdp::net
