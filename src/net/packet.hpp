// Packet: the mbuf-like buffer every layer of mdp operates on.
//
// Mirrors the layout conventions of DPDK's rte_mbuf / Click's Packet:
// a fixed-capacity buffer with headroom in front of the payload so headers
// can be prepended without copying, tailroom behind it, and a block of
// out-of-band annotations (timestamps, flow ids, multipath metadata) that
// travel with the packet through the data plane.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "trace/span.hpp"

namespace mdp::net {

class PacketPool;

/// Delivery class carried in the annotation area. AdaptiveMdp replicates
/// kLatencyCritical traffic and sprays kBestEffort traffic.
enum class TrafficClass : std::uint8_t {
  kBestEffort = 0,
  kLatencySensitive = 1,
  kLatencyCritical = 2,
};

/// Out-of-band metadata carried alongside the packet payload. This is the
/// moral equivalent of Click's annotation area / rte_mbuf's udata fields.
struct Annotations {
  std::uint64_t ingress_ns = 0;    ///< timestamp at data-plane ingress
  std::uint64_t dispatch_ns = 0;   ///< timestamp when scheduled onto a path
  std::uint64_t egress_ns = 0;     ///< timestamp at data-plane egress
  std::uint64_t flow_hash = 0;     ///< cached 5-tuple hash
  std::uint64_t seq = 0;           ///< per-flow sequence number (multipath)
  std::uint64_t cache_cookie = 0;  ///< FlowCache slow-path correlation id
  std::uint32_t flow_id = 0;       ///< dense flow identifier
  std::uint32_t flow_bytes = 0;    ///< total flow size, if known (FCT exps)
  std::uint16_t path_id = 0;       ///< last-mile path this copy traversed
  std::uint16_t tenant_id = 0;     ///< owning tenant (docs/TENANCY.md); 0 =
                                   ///< the implicit default tenant
  std::uint8_t copy_index = 0;     ///< 0 = original, >0 = redundant copy
  std::uint8_t paint = 0;          ///< Click-style paint annotation
  TrafficClass traffic_class = TrafficClass::kBestEffort;
  bool is_replica = false;         ///< true for redundant copies
  bool hedged = false;             ///< true if a hedge copy was issued
#if MDP_TRACE_ENABLED
  /// Stage-level trace span (stamped only while a Tracer is attached and
  /// enabled; see src/trace/span.hpp). Compile out with
  /// -DMDP_TRACE_ENABLED=0.
  trace::SpanRecord span;
#endif

  void clear() { *this = Annotations{}; }
};

/// Fixed-capacity packet buffer with headroom/tailroom semantics.
///
/// Not copyable: packets are pool-owned and move through the data plane by
/// pointer. Use PacketPool::clone() to produce a redundant copy.
class Packet {
 public:
  static constexpr std::size_t kDefaultHeadroom = 128;

  Packet(std::byte* buffer, std::size_t capacity, PacketPool* pool) noexcept
      : buffer_(buffer), capacity_(capacity), pool_(pool) {
    reset();
  }

  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;

  /// Restore the pristine state (empty payload, default headroom).
  void reset() noexcept {
    data_offset_ = kDefaultHeadroom < capacity_ ? kDefaultHeadroom : 0;
    length_ = 0;
    anno_.clear();
  }

  // --- payload accessors -------------------------------------------------
  std::byte* data() noexcept { return buffer_ + data_offset_; }
  const std::byte* data() const noexcept { return buffer_ + data_offset_; }
  std::size_t length() const noexcept { return length_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t headroom() const noexcept { return data_offset_; }
  std::size_t tailroom() const noexcept {
    return capacity_ - data_offset_ - length_;
  }
  std::span<std::byte> payload() noexcept { return {data(), length_}; }
  std::span<const std::byte> payload() const noexcept {
    return {data(), length_};
  }

  /// Set payload length directly (contents are whatever is in the buffer).
  /// Returns false if the requested length exceeds available room.
  bool set_length(std::size_t len) noexcept {
    if (data_offset_ + len > capacity_) return false;
    length_ = len;
    return true;
  }

  /// Prepend `n` bytes (consume headroom). Returns the new front, or
  /// nullptr if headroom is insufficient.
  std::byte* push(std::size_t n) noexcept {
    if (n > data_offset_) return nullptr;
    data_offset_ -= n;
    length_ += n;
    return data();
  }

  /// Strip `n` bytes from the front (grow headroom). Returns nullptr if the
  /// packet is shorter than `n`.
  std::byte* pull(std::size_t n) noexcept {
    if (n > length_) return nullptr;
    data_offset_ += n;
    length_ -= n;
    return data();
  }

  /// Append `n` bytes at the tail. Returns pointer to the appended region,
  /// or nullptr if tailroom is insufficient.
  std::byte* put(std::size_t n) noexcept {
    if (n > tailroom()) return nullptr;
    std::byte* tail = data() + length_;
    length_ += n;
    return tail;
  }

  /// Remove `n` bytes from the tail. Returns false if packet is shorter.
  bool trim(std::size_t n) noexcept {
    if (n > length_) return false;
    length_ -= n;
    return true;
  }

  /// Copy `src` into the payload area, replacing current contents.
  bool assign(std::span<const std::byte> src) noexcept {
    data_offset_ = kDefaultHeadroom < capacity_ ? kDefaultHeadroom : 0;
    if (src.size() > capacity_ - data_offset_) return false;
    std::memcpy(buffer_ + data_offset_, src.data(), src.size());
    length_ = src.size();
    return true;
  }

  // --- annotations --------------------------------------------------------
  Annotations& anno() noexcept { return anno_; }
  const Annotations& anno() const noexcept { return anno_; }

  PacketPool* pool() const noexcept { return pool_; }

 private:
  std::byte* buffer_;
  std::size_t capacity_;
  PacketPool* pool_;
  std::size_t data_offset_ = 0;
  std::size_t length_ = 0;
  Annotations anno_;
};

}  // namespace mdp::net
