#include "net/flow_key.hpp"

#include "net/headers.hpp"

namespace mdp::net {

std::string FlowKey::to_string() const {
  return ipv4_to_string(src_ip) + ":" + std::to_string(src_port) + "->" +
         ipv4_to_string(dst_ip) + ":" + std::to_string(dst_port) + "/" +
         std::to_string(protocol);
}

}  // namespace mdp::net
