#include "net/headers.hpp"

#include <cstdio>

namespace mdp::net {

std::string ipv4_to_string(std::uint32_t a) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (a >> 24) & 0xff,
                (a >> 16) & 0xff, (a >> 8) & 0xff, a & 0xff);
  return buf;
}

bool ipv4_from_string(const std::string& s, std::uint32_t* out) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  int n = std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) return false;
  *out = (a << 24) | (b << 16) | (c << 8) | d;
  return true;
}

}  // namespace mdp::net
