#include "net/checksum.hpp"

#include "net/byte_order.hpp"

namespace mdp::net {

std::uint32_t checksum_partial(const std::byte* data, std::size_t len,
                               std::uint32_t sum) noexcept {
  while (len >= 2) {
    sum += load_be16(data);
    data += 2;
    len -= 2;
  }
  if (len == 1) {
    sum += std::to_integer<std::uint32_t>(data[0]) << 8;
  }
  return sum;
}

std::uint16_t checksum_fold(std::uint32_t sum) noexcept {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t checksum(const std::byte* data, std::size_t len) noexcept {
  return checksum_fold(checksum_partial(data, len));
}

std::uint16_t checksum_update16(std::uint16_t old_csum, std::uint16_t old_word,
                                std::uint16_t new_word) noexcept {
  // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
  std::uint32_t sum = static_cast<std::uint16_t>(~old_csum);
  sum += static_cast<std::uint16_t>(~old_word);
  sum += new_word;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t checksum_update32(std::uint16_t old_csum, std::uint32_t old_val,
                                std::uint32_t new_val) noexcept {
  std::uint16_t c = old_csum;
  c = checksum_update16(c, static_cast<std::uint16_t>(old_val >> 16),
                        static_cast<std::uint16_t>(new_val >> 16));
  c = checksum_update16(c, static_cast<std::uint16_t>(old_val & 0xffff),
                        static_cast<std::uint16_t>(new_val & 0xffff));
  return c;
}

std::uint32_t pseudo_header_sum(std::uint32_t src_ip, std::uint32_t dst_ip,
                                std::uint8_t protocol,
                                std::uint16_t l4_len) noexcept {
  std::uint32_t sum = 0;
  sum += src_ip >> 16;
  sum += src_ip & 0xffff;
  sum += dst_ip >> 16;
  sum += dst_ip & 0xffff;
  sum += protocol;
  sum += l4_len;
  return sum;
}

}  // namespace mdp::net
