#include "forecast/capacity.hpp"

#include <algorithm>
#include <cmath>

namespace mdp::forecast {

void CapacityModel::add_observation(double load_per_path, double tail_ns) {
  if (!(load_per_path > 0.0) || !(tail_ns >= 0.0)) return;
  points_.push_back(Point{load_per_path, tail_ns});
  finalized_ = false;
}

void CapacityModel::finalize() {
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) { return a.load < b.load; });
  // Collapse duplicate loads to their worst tail, then flatten dips so the
  // curve is non-decreasing: a recorded tail that IMPROVES with load is
  // noise, and trusting it would let the solver under-provision.
  std::vector<Point> out;
  out.reserve(points_.size());
  for (const Point& p : points_) {
    if (!out.empty() && out.back().load == p.load) {
      out.back().tail_ns = std::max(out.back().tail_ns, p.tail_ns);
      continue;
    }
    out.push_back(p);
  }
  for (std::size_t i = 1; i < out.size(); ++i)
    out[i].tail_ns = std::max(out[i].tail_ns, out[i - 1].tail_ns);
  points_ = std::move(out);
  finalized_ = true;
}

double CapacityModel::predict_tail_ns(double load_per_path) const {
  if (points_.empty() || !finalized_) return 0.0;
  if (load_per_path <= points_.front().load) return points_.front().tail_ns;
  if (load_per_path >= points_.back().load) {
    // Extrapolate along the last segment; with a single point the only
    // defensible answer is flat.
    if (points_.size() == 1) return points_.back().tail_ns;
    const Point& a = points_[points_.size() - 2];
    const Point& b = points_.back();
    const double slope =
        b.load > a.load ? (b.tail_ns - a.tail_ns) / (b.load - a.load) : 0.0;
    return b.tail_ns + std::max(0.0, slope) * (load_per_path - b.load);
  }
  // Interior: linear interpolation inside the bracketing segment.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), load_per_path,
      [](const Point& p, double load) { return p.load < load; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double t = (load_per_path - lo.load) / (hi.load - lo.load);
  return lo.tail_ns + t * (hi.tail_ns - lo.tail_ns);
}

std::size_t CapacityModel::paths_needed(double total_load_per_tick,
                                        std::uint64_t slo_ns,
                                        std::size_t max_paths) const {
  if (points_.empty() || !finalized_ || max_paths == 0) return 0;
  if (!(total_load_per_tick > 0.0)) return 1;
  for (std::size_t k = 1; k <= max_paths; ++k) {
    const double share = total_load_per_tick / static_cast<double>(k);
    if (predict_tail_ns(share) <= static_cast<double>(slo_ns)) return k;
  }
  return 0;
}

}  // namespace mdp::forecast
