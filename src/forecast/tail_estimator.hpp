// TailEstimator: the predictive half of the control plane's observation
// stage — per-path (and per-stage) tail forecasts a few ticks ahead of
// the measurement.
//
// The reactive controller (mdp::ctrl) acts only after an SLO window has
// already breached, so every episode eats at least one bad window before
// actuation. "Scalable Tail Latency Estimation for Data Center Networks"
// (PAPERS.md) shows that cheap online estimators forecast flow-level
// tails well ahead of measurement, and "Deconstructing the Tail at Scale
// Effect" shows those tails build with predictable per-stage signatures —
// exactly what the SloMonitor's per-stage sums already record. This module
// turns that evidence into a forecast the controller can act on BEFORE
// the breach.
//
// Model: Holt's linear (double-exponential) smoothing per quantile proxy.
// For each path the estimator tracks a level + trend pair for the
// bucket-interpolated window p99 and p99.9:
//
//   level_t = alpha * x_t + (1 - alpha) * (level_{t-1} + trend_{t-1})
//   trend_t = beta * (level_t - level_{t-1}) + (1 - beta) * trend_{t-1}
//   forecast(h) = max(0, level_t + h * trend_t)
//
// plus one level+trend pair per pipeline stage over the window's
// per-sample stage mean (stage_sum / samples), which is what lets the
// controller probe the path whose TRENDING stage is worsening rather
// than the path that already broke.
//
// Confidence is an EWMA of the relative one-step-ahead forecast error:
// while the series follows a drift the Holt pair tracks (a ramp, a
// plateau), the residual shrinks and confidence rises toward 1; a regime
// change (step, storm onset) spikes the residual and confidence collapses
// — which is the estimator telling the controller "my extrapolation is
// currently fiction, do not actuate on it". Cold start is gated
// explicitly: a path is never `actionable` before min_windows adequate
// windows, and windows below min_samples are skipped entirely (they
// carry bucket noise, not signal).
//
// Layering: like mdp::telem, this module sits BELOW mdp::ctrl (trace/
// stats only), so the controller converts its WindowStats into the
// WindowSample mirror here — same pattern as telem::PathTickStats.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/span.hpp"

namespace mdp::forecast {

struct EstimatorConfig {
  /// Level smoothing factor (reaction to the newest window).
  double alpha = 0.4;
  /// Trend smoothing factor (reaction of the slope estimate).
  double beta = 0.2;
  /// Ticks ahead every forecast() extrapolates.
  std::uint64_t horizon_ticks = 3;
  /// Cold-start gate: a path is not actionable before this many adequate
  /// windows have been absorbed.
  std::uint64_t min_windows = 6;
  /// Windows with fewer samples than this are skipped (no update).
  std::uint64_t min_samples = 16;
  /// Forecasts below this confidence are not actionable.
  double confidence_floor = 0.5;
  /// Relative one-step error at which confidence reaches zero; the
  /// mapping is confidence = max(0, 1 - err_ewma / error_scale).
  double error_scale = 0.5;
  /// EWMA factor for the relative-error series behind the confidence.
  double error_alpha = 0.3;
};

/// One harvested observation window, flattened (mirror of
/// ctrl::WindowStats — forecast sits below mdp::ctrl in the link order,
/// so the controller converts rather than this module including ctrl
/// headers). p99/p999 should be the bucket-INTERPOLATED quantiles
/// (WindowStats::quantile_ns), not the quantized upper edges: the
/// estimator differentiates the series, and a staircase input turns the
/// trend term into noise.
struct WindowSample {
  std::uint64_t samples = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
  /// Per-stage latency mass this window (all-zero = no stage evidence).
  std::array<std::uint64_t, trace::kNumStages> stage_sum_ns{};
};

/// One path's forecast, horizon_ticks ahead of the newest window.
struct Forecast {
  std::uint64_t horizon_ticks = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
  /// [0, 1]: 1 - normalized one-step residual EWMA. Collapses on regime
  /// changes; consumers must not actuate below the configured floor.
  double confidence = 0.0;
  /// The stage whose per-sample mean has the steepest upward trend —
  /// where the tail is HEADING, not where it already went.
  trace::Stage dominant_stage = trace::Stage::kSchedule;
  /// Trend of that stage's per-sample mean, in ns per tick (<= 0 means
  /// no stage is worsening).
  double dominant_stage_slope = 0.0;
  bool has_stage = false;  ///< stage evidence was ever observed
  /// Cold-start + confidence gate: true iff the path has absorbed
  /// min_windows adequate windows AND confidence >= confidence_floor.
  /// Low-confidence forecasts must never actuate.
  bool actionable = false;
};

class TailEstimator {
 public:
  explicit TailEstimator(std::size_t num_paths, EstimatorConfig cfg = {});

  /// Absorb one harvested window for `path` (one call per path per
  /// controller tick). Windows below min_samples are counted as skipped
  /// and change nothing.
  void observe(std::size_t path, const WindowSample& w);

  /// The current forecast for `path`, horizon_ticks ahead.
  Forecast forecast(std::size_t path) const;

  std::size_t num_paths() const noexcept { return paths_.size(); }
  std::uint64_t windows_seen(std::size_t path) const;
  std::uint64_t windows_skipped(std::size_t path) const;
  const EstimatorConfig& config() const noexcept { return cfg_; }

 private:
  /// One Holt level+trend pair. Priming: the first sample sets the level
  /// with zero trend, so the estimator starts flat instead of inventing
  /// a slope from a single point.
  struct Holt {
    double level = 0.0;
    double trend = 0.0;
    bool primed = false;

    void update(double x, double alpha, double beta) {
      if (!primed) {
        level = x;
        trend = 0.0;
        primed = true;
        return;
      }
      const double prev_level = level;
      level = alpha * x + (1.0 - alpha) * (level + trend);
      trend = beta * (level - prev_level) + (1.0 - beta) * trend;
    }
    double predict(double h) const {
      const double f = level + h * trend;
      return f > 0.0 ? f : 0.0;
    }
  };

  struct PathEst {
    Holt p99;
    Holt p999;
    std::array<Holt, trace::kNumStages> stage{};
    /// EWMA of |x - one_step_forecast| / max(x, forecast): the
    /// normalized residual behind the confidence score.
    double rel_err_ewma = 0.0;
    bool err_primed = false;
    std::uint64_t windows = 0;
    std::uint64_t skipped = 0;
    bool has_stage = false;
  };

  EstimatorConfig cfg_;
  std::vector<PathEst> paths_;
};

}  // namespace mdp::forecast
