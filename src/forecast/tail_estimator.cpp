#include "forecast/tail_estimator.hpp"

#include <algorithm>
#include <cmath>

namespace mdp::forecast {

TailEstimator::TailEstimator(std::size_t num_paths, EstimatorConfig cfg)
    : cfg_(cfg), paths_(num_paths) {
  // Defensive clamps: smoothing factors outside (0, 1] turn the
  // recursion divergent; a zero horizon makes every forecast a nowcast.
  cfg_.alpha = std::clamp(cfg_.alpha, 1e-3, 1.0);
  cfg_.beta = std::clamp(cfg_.beta, 1e-3, 1.0);
  cfg_.error_alpha = std::clamp(cfg_.error_alpha, 1e-3, 1.0);
  if (cfg_.error_scale <= 0.0) cfg_.error_scale = 0.5;
  if (cfg_.horizon_ticks == 0) cfg_.horizon_ticks = 1;
}

void TailEstimator::observe(std::size_t path, const WindowSample& w) {
  if (path >= paths_.size()) return;
  PathEst& pe = paths_[path];
  if (w.samples < cfg_.min_samples) {
    ++pe.skipped;
    return;
  }

  // Residual BEFORE the update: how far did the newest window land from
  // where the previous state said it would? Normalizing by the larger of
  // the two keeps the score in [0, 1] and symmetric in over/under-shoot.
  // The residual is judged on the p99.9 series — the quantity the
  // controller actually actuates on.
  const double x999 = static_cast<double>(w.p999_ns);
  if (pe.p999.primed) {
    const double predicted = pe.p999.predict(1.0);
    const double denom = std::max({x999, predicted, 1.0});
    const double rel_err = std::abs(x999 - predicted) / denom;
    pe.rel_err_ewma = pe.err_primed
                          ? cfg_.error_alpha * rel_err +
                                (1.0 - cfg_.error_alpha) * pe.rel_err_ewma
                          : rel_err;
    pe.err_primed = true;
  }

  pe.p99.update(static_cast<double>(w.p99_ns), cfg_.alpha, cfg_.beta);
  pe.p999.update(x999, cfg_.alpha, cfg_.beta);

  // Per-stage trends run on the per-sample stage MEAN, so a window with
  // more packets doesn't read as a worsening stage.
  for (std::size_t i = 0; i < trace::kNumStages; ++i) {
    if (w.stage_sum_ns[i] == 0 && !pe.stage[i].primed) continue;
    pe.has_stage = true;
    const double mean = static_cast<double>(w.stage_sum_ns[i]) /
                        static_cast<double>(w.samples);
    pe.stage[i].update(mean, cfg_.alpha, cfg_.beta);
  }
  ++pe.windows;
}

Forecast TailEstimator::forecast(std::size_t path) const {
  Forecast f;
  f.horizon_ticks = cfg_.horizon_ticks;
  if (path >= paths_.size()) return f;
  const PathEst& pe = paths_[path];
  if (pe.windows == 0) return f;

  const double h = static_cast<double>(cfg_.horizon_ticks);
  f.p99_ns = static_cast<std::uint64_t>(pe.p99.predict(h));
  f.p999_ns = static_cast<std::uint64_t>(pe.p999.predict(h));
  f.confidence =
      pe.err_primed
          ? std::max(0.0, 1.0 - pe.rel_err_ewma / cfg_.error_scale)
          : 0.0;
  f.has_stage = pe.has_stage;
  if (pe.has_stage) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < trace::kNumStages; ++i)
      if (pe.stage[i].trend > pe.stage[best].trend) best = i;
    f.dominant_stage = trace::stage_at(best);
    f.dominant_stage_slope = pe.stage[best].trend;
  }
  f.actionable = pe.windows >= cfg_.min_windows &&
                 f.confidence >= cfg_.confidence_floor;
  return f;
}

std::uint64_t TailEstimator::windows_seen(std::size_t path) const {
  return path < paths_.size() ? paths_[path].windows : 0;
}

std::uint64_t TailEstimator::windows_skipped(std::size_t path) const {
  return path < paths_.size() ? paths_[path].skipped : 0;
}

}  // namespace mdp::forecast
