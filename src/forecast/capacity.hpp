// Offline capacity solver: "how many paths do I need for SLO X at load
// Y?" answered from recorded telemetry instead of guesswork.
//
// The input is a set of recorded (load, tail) observations — per-path
// offered load (samples per controller tick) against the steady-state
// tail the TailEstimator settled on at that load. The chaos rig and the
// ext5 bench produce these by replaying recorded per-tick windows
// through the estimator at several load levels: the estimator's level
// term IS the steady-state tail with the window noise smoothed out.
//
// The solver builds a monotone load -> tail curve (isotonic envelope:
// queueing tails never improve with load; recorded dips are measurement
// noise and are flattened upward) and inverts it:
//
//   paths_needed(total_load, slo) = smallest k with
//       predict_tail(total_load / k) <= slo
//
// Between recorded points the curve interpolates linearly; beyond the
// last point it extrapolates along the final segment's slope (with a
// floor of flat), which deliberately errs toward MORE paths — a capacity
// answer extrapolated optimistically is how fleets end up underwater.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mdp::forecast {

class CapacityModel {
 public:
  /// Record one calibration point: a per-path offered load (samples per
  /// tick) and the steady-state tail estimate observed at that load.
  void add_observation(double load_per_path, double tail_ns);

  /// Sort observations and flatten non-monotone dips (call once after
  /// the last add_observation; add_observation resets it).
  void finalize();

  std::size_t observations() const noexcept { return points_.size(); }
  bool empty() const noexcept { return points_.empty(); }

  /// Predicted steady-state tail at `load_per_path`. Linear between
  /// recorded points, extrapolated along the last segment beyond them,
  /// clamped at the first point below them.
  double predict_tail_ns(double load_per_path) const;

  /// Smallest path count k in [1, max_paths] whose per-path share of
  /// `total_load_per_tick` keeps the predicted tail inside `slo_ns`.
  /// Returns 0 when even max_paths cannot hold the SLO (the honest
  /// answer; callers must not clamp it to max_paths silently).
  std::size_t paths_needed(double total_load_per_tick,
                           std::uint64_t slo_ns,
                           std::size_t max_paths) const;

 private:
  struct Point {
    double load = 0.0;
    double tail_ns = 0.0;
  };
  std::vector<Point> points_;
  bool finalized_ = false;
};

}  // namespace mdp::forecast
