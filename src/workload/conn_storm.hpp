// ConnStorm: a seeded connection-storm workload — per-tenant flow
// arrival/teardown schedules with a triangle-ramp storm phase.
//
// The tenancy tier's adversarial workload (docs/TENANCY.md): each tenant
// opens new flows at a base rate; a storming tenant ramps its arrival
// rate linearly to a peak and back across [storm_from, storm_to) —
// the SYN-flood / thundering-herd shape that fills NF flow tables and
// admission budgets. Flows live a fixed number of ticks, then tear down.
//
// Determinism contract (same as workload::TrafficGen): identical
// (config, seed, tick sequence) produce the identical event sequence —
// flow ids, arrival order, teardown order. Fractional per-tick rates are
// carried in an accumulator, so e.g. 0.5 flows/tick arrives every second
// tick, with no randomness lost to truncation. Chaos-soak byte-identity
// replays depend on this.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

namespace mdp::workload {

/// One tenant's storm schedule. Rates are flows per tick.
struct ConnStormTenant {
  std::uint16_t tenant = 0;
  double base_arrivals_per_tick = 1.0;
  /// Each flow tears down this many ticks after it arrives.
  std::uint64_t conn_lifetime_ticks = 64;
  /// Storm phase [storm_from, storm_to): the arrival rate ramps
  /// base -> peak -> base as a triangle over the phase. Equal bounds
  /// disable the storm (a well-behaved tenant).
  std::uint64_t storm_from = 0;
  std::uint64_t storm_to = 0;
  double storm_peak_arrivals_per_tick = 0.0;
};

struct ConnEvent {
  enum class Type : std::uint8_t { kArrival, kTeardown };
  Type type = Type::kArrival;
  std::uint16_t tenant = 0;
  /// Dense id, unique across all tenants for the generator's lifetime.
  std::uint64_t conn_id = 0;
};

class ConnStorm {
 public:
  ConnStorm(std::vector<ConnStormTenant> tenants, std::uint64_t seed);

  /// Advance one tick: emits this tick's arrivals (jittered around the
  /// scheduled rate) and the teardowns of flows whose lifetime expired.
  /// Arrival events precede teardown events within a tick.
  std::vector<ConnEvent> tick();

  /// The scheduled (pre-jitter) arrival rate for `tenant` at `tick` —
  /// the triangle ramp, exposed for tests and plots.
  double scheduled_rate(std::size_t tenant_idx,
                        std::uint64_t tick) const noexcept;

  std::uint64_t ticks() const noexcept { return tick_; }
  std::uint64_t total_arrivals() const noexcept { return total_arrivals_; }
  std::uint64_t total_teardowns() const noexcept {
    return total_teardowns_;
  }
  std::uint64_t arrivals(std::size_t tenant_idx) const noexcept {
    return per_tenant_arrivals_[tenant_idx];
  }
  /// Flows opened but not yet torn down, across all tenants.
  std::size_t live_flows() const noexcept { return live_; }
  std::size_t num_tenants() const noexcept { return tenants_.size(); }
  const ConnStormTenant& tenant(std::size_t i) const {
    return tenants_[i];
  }

 private:
  struct PerTenant {
    double accum = 0.0;  ///< fractional arrivals carried across ticks
    /// Live flows in arrival order; front tears down first (FIFO —
    /// lifetimes are constant per tenant).
    std::deque<std::pair<std::uint64_t, std::uint64_t>>
        live;  ///< (teardown_tick, conn_id)
  };

  std::uint64_t next_u64() noexcept;  // splitmix64

  std::vector<ConnStormTenant> tenants_;
  std::vector<PerTenant> state_;
  std::vector<std::uint64_t> per_tenant_arrivals_;
  std::uint64_t rng_;
  std::uint64_t tick_ = 0;
  std::uint64_t next_conn_id_ = 0;
  std::uint64_t total_arrivals_ = 0;
  std::uint64_t total_teardowns_ = 0;
  std::size_t live_ = 0;
};

}  // namespace mdp::workload
