#include "workload/trace.hpp"

#include <cstdio>
#include <memory>

namespace mdp::workload {

namespace {
constexpr std::uint32_t kMagic = 0x4d445054;  // "MDPT"
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

bool TraceWriter::save(const std::string& path) const {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  std::uint32_t header[3] = {kMagic, kVersion,
                             static_cast<std::uint32_t>(records_.size())};
  if (std::fwrite(header, sizeof(header), 1, f.get()) != 1) return false;
  for (const auto& r : records_) {
    if (std::fwrite(&r.t_ns, sizeof(r.t_ns), 1, f.get()) != 1) return false;
    if (std::fwrite(&r.flow_id, sizeof(r.flow_id), 1, f.get()) != 1)
      return false;
    if (std::fwrite(&r.size_bytes, sizeof(r.size_bytes), 1, f.get()) != 1)
      return false;
    if (std::fwrite(&r.traffic_class, sizeof(r.traffic_class), 1, f.get()) !=
        1)
      return false;
  }
  return true;
}

bool TraceReader::load(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return false;
  std::uint32_t header[3];
  if (std::fread(header, sizeof(header), 1, f.get()) != 1) return false;
  if (header[0] != kMagic || header[1] != kVersion) return false;
  records_.clear();
  records_.reserve(header[2]);
  for (std::uint32_t i = 0; i < header[2]; ++i) {
    TraceRecord r;
    if (std::fread(&r.t_ns, sizeof(r.t_ns), 1, f.get()) != 1) return false;
    if (std::fread(&r.flow_id, sizeof(r.flow_id), 1, f.get()) != 1)
      return false;
    if (std::fread(&r.size_bytes, sizeof(r.size_bytes), 1, f.get()) != 1)
      return false;
    if (std::fread(&r.traffic_class, sizeof(r.traffic_class), 1, f.get()) !=
        1)
      return false;
    records_.push_back(r);
  }
  return true;
}

}  // namespace mdp::workload
