// Flow-size distributions. The web-search and data-mining CDFs are the
// standard datacenter workload stand-ins (from the DCTCP / VL2 traces as
// reused by pFabric, pHost, Homa, ...): both heavy-tailed, data-mining far
// more so (most flows are tiny, most bytes are in elephants).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/distributions.hpp"

namespace mdp::workload {

/// Web-search workload CDF (flow size in bytes).
sim::DistributionPtr web_search_flow_sizes();

/// Data-mining workload CDF (flow size in bytes).
sim::DistributionPtr data_mining_flow_sizes();

/// Uniform small-RPC mix: 1..16 KB.
sim::DistributionPtr uniform_rpc_flow_sizes();

/// Factory by name ("websearch" | "datamining" | "uniform"); nullptr for
/// unknown names.
sim::DistributionPtr flow_sizes_by_name(const std::string& name);

/// Names accepted by flow_sizes_by_name, in canonical order.
std::vector<std::string> flow_size_workload_names();

}  // namespace mdp::workload
