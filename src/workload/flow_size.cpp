#include "workload/flow_size.hpp"

namespace mdp::workload {

sim::DistributionPtr web_search_flow_sizes() {
  // Knots (bytes, cum prob) approximating the DCTCP web-search trace.
  return std::make_unique<sim::EmpiricalCdf>(
      std::vector<std::pair<double, double>>{
          {6'000, 0.00},   {10'000, 0.15},  {13'000, 0.20},
          {19'000, 0.30},  {33'000, 0.40},  {53'000, 0.53},
          {133'000, 0.60}, {667'000, 0.70}, {1'333'000, 0.80},
          {3'333'000, 0.90}, {6'667'000, 0.97}, {20'000'000, 1.00}});
}

sim::DistributionPtr data_mining_flow_sizes() {
  // Knots approximating the VL2 data-mining trace: 80% of flows under
  // 10 KB but a tail reaching 1 GB carries most of the bytes.
  return std::make_unique<sim::EmpiricalCdf>(
      std::vector<std::pair<double, double>>{
          {100, 0.00},        {180, 0.10},        {250, 0.20},
          {560, 0.30},        {900, 0.40},        {1'100, 0.50},
          {1'870, 0.60},      {3'160, 0.70},      {10'000, 0.80},
          {400'000, 0.90},    {3'160'000, 0.95},  {100'000'000, 0.98},
          {1'000'000'000, 1.00}});
}

sim::DistributionPtr uniform_rpc_flow_sizes() {
  return std::make_unique<sim::Uniform>(1'024, 16'384);
}

sim::DistributionPtr flow_sizes_by_name(const std::string& name) {
  if (name == "websearch") return web_search_flow_sizes();
  if (name == "datamining") return data_mining_flow_sizes();
  if (name == "uniform") return uniform_rpc_flow_sizes();
  return nullptr;
}

std::vector<std::string> flow_size_workload_names() {
  return {"websearch", "datamining", "uniform"};
}

}  // namespace mdp::workload
