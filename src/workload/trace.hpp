// PacketTrace: minimal binary trace format (one record per packet:
// timestamp, flow id, size, class) with writer/reader. Lets experiments be
// replayed exactly and serves as the stand-in for pcap replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mdp::workload {

struct TraceRecord {
  std::uint64_t t_ns = 0;
  std::uint32_t flow_id = 0;
  std::uint16_t size_bytes = 0;
  std::uint8_t traffic_class = 0;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

class TraceWriter {
 public:
  void append(TraceRecord r) { records_.push_back(r); }
  std::size_t size() const noexcept { return records_.size(); }
  /// Serialize to file. Returns false on I/O error.
  bool save(const std::string& path) const;
  const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }

 private:
  std::vector<TraceRecord> records_;
};

class TraceReader {
 public:
  /// Load from file. Returns false on I/O error or bad magic.
  bool load(const std::string& path);
  const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace mdp::workload
