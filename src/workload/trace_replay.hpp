// TraceReplay: drives the data-plane ingress from a recorded packet trace
// (see trace.hpp), reproducing exact arrival times, flow identities,
// sizes, and traffic classes. The pcap-replay stand-in: any experiment can
// be captured once (TraceWriter) and replayed bit-identically.
#pragma once

#include <functional>
#include <vector>

#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "sim/event_queue.hpp"
#include "workload/trace.hpp"

namespace mdp::workload {

class TraceReplay {
 public:
  using Sink = std::function<void(net::PacketPtr)>;

  /// @param time_offset_ns shifts every record so replay can start "now".
  TraceReplay(sim::EventQueue& eq, net::PacketPool& pool,
              std::vector<TraceRecord> records, Sink sink,
              sim::TimeNs time_offset_ns = 0)
      : eq_(eq),
        pool_(pool),
        records_(std::move(records)),
        sink_(std::move(sink)),
        offset_(time_offset_ns) {}

  /// Schedule every record. Packets materialize lazily at fire time so
  /// the pool only holds in-flight packets.
  void start() {
    for (const TraceRecord& r : records_) {
      eq_.schedule_at(offset_ + r.t_ns, [this, r] { emit(r); });
    }
  }

  std::uint64_t emitted() const noexcept { return emitted_; }
  std::size_t size() const noexcept { return records_.size(); }

 private:
  void emit(const TraceRecord& r) {
    net::BuildSpec spec;
    spec.flow.src_ip = 0x0b000000 | (r.flow_id & 0x00ffffff);
    spec.flow.dst_ip = 0x0a006401;
    spec.flow.src_port =
        static_cast<std::uint16_t>(1024 + (r.flow_id % 60000));
    spec.flow.dst_port = 80;
    constexpr std::size_t kHeaders = net::kEthernetHeaderLen +
                                     net::kIpv4MinHeaderLen +
                                     net::kUdpHeaderLen;
    spec.payload_len =
        r.size_bytes > kHeaders + 18
            ? static_cast<std::size_t>(r.size_bytes) - kHeaders
            : 18;
    auto pkt = net::build_udp(pool_, spec);
    if (!pkt) return;
    auto& a = pkt->anno();
    a.flow_id = r.flow_id;
    a.ingress_ns = eq_.now();
    a.traffic_class = static_cast<net::TrafficClass>(r.traffic_class);
    ++emitted_;
    sink_(std::move(pkt));
  }

  sim::EventQueue& eq_;
  net::PacketPool& pool_;
  std::vector<TraceRecord> records_;
  Sink sink_;
  sim::TimeNs offset_;
  std::uint64_t emitted_ = 0;
};

}  // namespace mdp::workload
