#include "workload/conn_storm.hpp"

namespace mdp::workload {

ConnStorm::ConnStorm(std::vector<ConnStormTenant> tenants,
                     std::uint64_t seed)
    : tenants_(std::move(tenants)),
      state_(tenants_.size()),
      per_tenant_arrivals_(tenants_.size(), 0),
      rng_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

std::uint64_t ConnStorm::next_u64() noexcept {
  // splitmix64: tiny, seedable, and identical everywhere.
  std::uint64_t z = (rng_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double ConnStorm::scheduled_rate(std::size_t tenant_idx,
                                 std::uint64_t tick) const noexcept {
  const ConnStormTenant& t = tenants_[tenant_idx];
  if (tick < t.storm_from || tick >= t.storm_to ||
      t.storm_to <= t.storm_from)
    return t.base_arrivals_per_tick;
  // Triangle ramp: base -> peak at the phase midpoint -> base.
  const double span = static_cast<double>(t.storm_to - t.storm_from);
  const double pos = static_cast<double>(tick - t.storm_from) / span;
  const double shape = pos < 0.5 ? pos * 2.0 : (1.0 - pos) * 2.0;
  return t.base_arrivals_per_tick +
         (t.storm_peak_arrivals_per_tick - t.base_arrivals_per_tick) *
             shape;
}

std::vector<ConnEvent> ConnStorm::tick() {
  std::vector<ConnEvent> out;
  const std::uint64_t now = tick_;

  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const ConnStormTenant& t = tenants_[i];
    PerTenant& st = state_[i];

    // Scheduled rate plus +/-25% multiplicative jitter, carried through a
    // fractional accumulator so the long-run rate matches the schedule.
    const double rate = scheduled_rate(i, now);
    const double jitter =
        0.75 + 0.5 * (static_cast<double>(next_u64() >> 11) *
                      (1.0 / 9007199254740992.0));  // [0.75, 1.25)
    st.accum += rate * jitter;
    auto n = static_cast<std::uint64_t>(st.accum);
    st.accum -= static_cast<double>(n);

    for (std::uint64_t k = 0; k < n; ++k) {
      const std::uint64_t id = next_conn_id_++;
      st.live.emplace_back(now + t.conn_lifetime_ticks, id);
      out.push_back({ConnEvent::Type::kArrival, t.tenant, id});
      ++total_arrivals_;
      ++per_tenant_arrivals_[i];
      ++live_;
    }
  }

  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    PerTenant& st = state_[i];
    while (!st.live.empty() && st.live.front().first <= now) {
      out.push_back({ConnEvent::Type::kTeardown, tenants_[i].tenant,
                     st.live.front().second});
      st.live.pop_front();
      ++total_teardowns_;
      --live_;
    }
  }

  ++tick_;
  return out;
}

}  // namespace mdp::workload
