#include "workload/rpc_workload.hpp"

#include <algorithm>

namespace mdp::workload {

RpcWorkload::RpcWorkload(sim::EventQueue& eq, net::PacketPool& pool,
                         RpcWorkloadConfig cfg,
                         sim::DistributionPtr flow_sizes, Sink sink)
    : eq_(eq),
      pool_(pool),
      cfg_(cfg),
      flow_sizes_(std::move(flow_sizes)),
      sink_(std::move(sink)),
      rng_(cfg.seed),
      interarrival_(cfg.mean_interarrival_ns) {}

void RpcWorkload::start(std::uint64_t num_flows) {
  remaining_ = num_flows;
  schedule_next_flow();
}

void RpcWorkload::schedule_next_flow() {
  if (remaining_ == 0) return;
  auto gap = static_cast<sim::TimeNs>(
      std::max(1.0, interarrival_.sample(rng_)));
  eq_.schedule_in(gap, [this] {
    if (remaining_ == 0) return;
    --remaining_;
    launch_flow();
    schedule_next_flow();
  });
}

void RpcWorkload::launch_flow() {
  std::uint32_t flow_id = next_flow_id_++;
  double bytes = flow_sizes_->sample(rng_);
  auto pkts = static_cast<std::uint32_t>(
      std::clamp<double>(std::ceil(bytes / cfg_.mss), 1.0,
                         static_cast<double>(cfg_.max_packets_per_flow)));
  FlowState st;
  st.packets_expected = pkts;
  st.start_ns = eq_.now();
  st.bytes = bytes;
  flows_.emplace(flow_id, st);
  ++flows_started_;
  emit_packet(flow_id, 0);
}

void RpcWorkload::emit_packet(std::uint32_t flow_id, std::uint32_t pkt_idx) {
  auto it = flows_.find(flow_id);
  if (it == flows_.end()) return;
  const FlowState& st = it->second;

  net::BuildSpec spec;
  spec.flow.src_ip = 0x0b000000 | (flow_id & 0x00ffffff);
  spec.flow.dst_ip = 0x0a006401;
  spec.flow.src_port = static_cast<std::uint16_t>(1024 + (flow_id % 60000));
  spec.flow.dst_port = 80;
  // Last packet may be short.
  double remaining_bytes =
      st.bytes - static_cast<double>(pkt_idx) * cfg_.mss;
  std::size_t payload = cfg_.mss;
  if (remaining_bytes < cfg_.mss)
    payload = std::max<std::size_t>(
        18, static_cast<std::size_t>(std::max(1.0, remaining_bytes)));
  spec.payload_len = payload;
  net::PacketPtr pkt = net::build_udp(pool_, spec);
  if (pkt) {
    auto& a = pkt->anno();
    a.flow_id = flow_id;
    a.ingress_ns = eq_.now();
    a.flow_bytes = static_cast<std::uint32_t>(
        std::min<double>(st.bytes, 4e9));
    // Short flows are the latency-critical ones in FCT experiments.
    a.traffic_class = st.bytes <= cfg_.short_flow_cutoff_bytes
                          ? net::TrafficClass::kLatencyCritical
                          : net::TrafficClass::kBestEffort;
    sink_(std::move(pkt));
  }
  std::uint32_t next = pkt_idx + 1;
  if (next < st.packets_expected) {
    eq_.schedule_in(cfg_.pacing_gap_ns,
                    [this, flow_id, next] { emit_packet(flow_id, next); });
  }
}

void RpcWorkload::on_packet_egress(std::uint32_t flow_id,
                                   sim::TimeNs now_ns) {
  auto it = flows_.find(flow_id);
  if (it == flows_.end()) return;
  FlowState& st = it->second;
  if (++st.packets_done < st.packets_expected) return;

  sim::TimeNs fct = now_ns - st.start_ns;
  all_fct_.record(fct);
  if (st.bytes <= cfg_.short_flow_cutoff_bytes) {
    short_fct_.record(fct);
  } else {
    long_fct_.record(fct);
  }
  ++flows_completed_;
  flows_.erase(it);
  if (flow_done_) flow_done_(flow_id);
}

}  // namespace mdp::workload
