// TrafficGen: open-loop packet generator driving the data-plane ingress.
//
// Packets arrive per the configured arrival process; each belongs to one of
// `num_flows` long-lived flows (distinct 5-tuples through the VIP so the
// whole NF chain exercises). A configurable fraction of flows is marked
// latency-critical — the traffic AdaptiveMdp replicates.
//
// Packet sizes are drawn per-packet from a size distribution (bytes on the
// wire, clamped to [64, mtu]).
#pragma once

#include <functional>
#include <memory>

#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "sim/event_queue.hpp"
#include "workload/arrival.hpp"

namespace mdp::workload {

struct TrafficGenConfig {
  std::uint64_t seed = 1;
  std::size_t num_flows = 256;
  double latency_critical_fraction = 0.1;  ///< of flows, by flow id
  std::size_t min_payload = 18;            ///< 64B frame floor
  std::size_t max_payload = 1458;          ///< 1500B frame ceiling
  double mean_payload = 200;               ///< exponential payload sizes
  std::uint32_t client_subnet = 0x0b000000;  ///< 11.0.0.0/8 sources
  std::uint32_t vip = 0x0a006401;            ///< 10.0.100.1 (LB VIP)
  bool tcp = false;                          ///< UDP by default
};

class TrafficGen {
 public:
  /// `sink` receives each generated packet (the data-plane ingress).
  using Sink = std::function<void(net::PacketPtr)>;

  TrafficGen(sim::EventQueue& eq, net::PacketPool& pool,
             TrafficGenConfig cfg, ArrivalPtr arrivals, Sink sink);

  /// Generate `count` packets starting at now(); events self-schedule.
  void start(std::uint64_t count);

  /// Stop after the current packet (pending events drain harmlessly).
  void stop() noexcept { remaining_ = 0; }

  std::uint64_t emitted() const noexcept { return emitted_; }
  const TrafficGenConfig& config() const noexcept { return cfg_; }

  /// The 5-tuple of flow `id` (tests use this to predict NF behaviour).
  net::FlowKey flow_key(std::uint32_t flow_id) const noexcept;

 private:
  void emit_one();
  void schedule_next();

  sim::EventQueue& eq_;
  net::PacketPool& pool_;
  TrafficGenConfig cfg_;
  ArrivalPtr arrivals_;
  Sink sink_;
  sim::Rng rng_;
  sim::Exponential payload_dist_;
  std::uint64_t remaining_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace mdp::workload
