// Arrival processes for open-loop traffic generation.
//
//   Poisson       : exponential gaps (the classic load model)
//   Deterministic : fixed gaps (line-rate pacing)
//   Mmpp          : 2-state Markov-modulated Poisson process — the burst
//                   model. State HI emits at burst_factor x the base rate;
//                   dwell times are exponential. This is what creates the
//                   micro-bursts the motivation figures show.
#pragma once

#include <memory>

#include "sim/distributions.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace mdp::workload {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Gap to the next arrival, in ns.
  virtual sim::TimeNs next_gap(sim::Rng& rng) = 0;
  /// Long-run mean gap (for load accounting).
  virtual double mean_gap_ns() const = 0;
};

using ArrivalPtr = std::unique_ptr<ArrivalProcess>;

class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double mean_gap_ns) : exp_(mean_gap_ns) {}
  sim::TimeNs next_gap(sim::Rng& rng) override {
    double g = exp_.sample(rng);
    return g < 1 ? 1 : static_cast<sim::TimeNs>(g);
  }
  double mean_gap_ns() const override { return exp_.mean(); }

 private:
  sim::Exponential exp_;
};

class DeterministicArrivals final : public ArrivalProcess {
 public:
  explicit DeterministicArrivals(sim::TimeNs gap_ns)
      : gap_(gap_ns ? gap_ns : 1) {}
  sim::TimeNs next_gap(sim::Rng&) override { return gap_; }
  double mean_gap_ns() const override { return static_cast<double>(gap_); }

 private:
  sim::TimeNs gap_;
};

struct MmppConfig {
  double base_gap_ns = 2000;     ///< mean gap in the LO state
  double burst_factor = 10;      ///< HI-state rate multiplier
  double mean_hi_dwell_ns = 50'000;
  double mean_lo_dwell_ns = 450'000;
};

class MmppArrivals final : public ArrivalProcess {
 public:
  explicit MmppArrivals(MmppConfig cfg)
      : cfg_(cfg),
        lo_(cfg.base_gap_ns),
        hi_(cfg.base_gap_ns / cfg.burst_factor) {}

  sim::TimeNs next_gap(sim::Rng& rng) override {
    // Advance the modulating chain by the consumed gap, possibly flipping
    // state mid-gap (approximation: state is sampled at gap boundaries,
    // which is accurate when dwell >> gap, as configured).
    if (remaining_dwell_ns_ <= 0) {
      in_hi_ = !in_hi_;
      double dwell =
          in_hi_ ? cfg_.mean_hi_dwell_ns : cfg_.mean_lo_dwell_ns;
      remaining_dwell_ns_ = sim::Exponential(dwell).sample(rng);
    }
    double g = (in_hi_ ? hi_ : lo_).sample(rng);
    if (g < 1) g = 1;
    remaining_dwell_ns_ -= g;
    return static_cast<sim::TimeNs>(g);
  }

  double mean_gap_ns() const override {
    // Time-weighted harmonic combination of the two rates.
    double p_hi = cfg_.mean_hi_dwell_ns /
                  (cfg_.mean_hi_dwell_ns + cfg_.mean_lo_dwell_ns);
    double rate = p_hi * (cfg_.burst_factor / cfg_.base_gap_ns) +
                  (1 - p_hi) * (1.0 / cfg_.base_gap_ns);
    return 1.0 / rate;
  }

  bool in_burst() const noexcept { return in_hi_; }

 private:
  MmppConfig cfg_;
  sim::Exponential lo_;
  sim::Exponential hi_;
  bool in_hi_ = false;
  double remaining_dwell_ns_ = 0;
};

}  // namespace mdp::workload
