#include "workload/traffic_gen.hpp"

#include <algorithm>

namespace mdp::workload {

TrafficGen::TrafficGen(sim::EventQueue& eq, net::PacketPool& pool,
                       TrafficGenConfig cfg, ArrivalPtr arrivals, Sink sink)
    : eq_(eq),
      pool_(pool),
      cfg_(cfg),
      arrivals_(std::move(arrivals)),
      sink_(std::move(sink)),
      rng_(cfg.seed),
      payload_dist_(cfg.mean_payload) {}

net::FlowKey TrafficGen::flow_key(std::uint32_t flow_id) const noexcept {
  net::FlowKey k;
  // Spread sources across the client subnet; distinct ports per flow.
  k.src_ip = cfg_.client_subnet | ((flow_id * 2654435761u) & 0x00ffffff);
  k.dst_ip = cfg_.vip;
  k.src_port = static_cast<std::uint16_t>(1024 + (flow_id % 60000));
  k.dst_port = 80;
  k.protocol = cfg_.tcp ? net::kIpProtoTcp : net::kIpProtoUdp;
  return k;
}

void TrafficGen::start(std::uint64_t count) {
  remaining_ = count;
  schedule_next();
}

void TrafficGen::schedule_next() {
  if (remaining_ == 0) return;
  eq_.schedule_in(arrivals_->next_gap(rng_), [this] {
    if (remaining_ == 0) return;
    --remaining_;
    emit_one();
    schedule_next();
  });
}

void TrafficGen::emit_one() {
  auto flow_id =
      static_cast<std::uint32_t>(rng_.uniform_u64(cfg_.num_flows));
  net::BuildSpec spec;
  spec.flow = flow_key(flow_id);
  double p = payload_dist_.sample(rng_);
  spec.payload_len = std::clamp(static_cast<std::size_t>(p),
                                cfg_.min_payload, cfg_.max_payload);
  net::PacketPtr pkt = cfg_.tcp ? net::build_tcp(pool_, spec)
                                : net::build_udp(pool_, spec);
  if (!pkt) return;  // pool exhausted: drop at the wire

  auto& a = pkt->anno();
  a.flow_id = flow_id;
  a.ingress_ns = eq_.now();
  // Flow ids below the critical fraction are latency-critical; stable per
  // flow so policies can learn.
  double frac = static_cast<double>(flow_id) /
                static_cast<double>(cfg_.num_flows);
  a.traffic_class = frac < cfg_.latency_critical_fraction
                        ? net::TrafficClass::kLatencyCritical
                        : net::TrafficClass::kBestEffort;
  ++emitted_;
  sink_(std::move(pkt));
}

}  // namespace mdp::workload
