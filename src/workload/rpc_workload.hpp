// RpcWorkload: flow-level workload for flow-completion-time experiments.
//
// Requests (flows) arrive Poisson; each flow's size is drawn from a
// flow-size CDF, segmented into MSS-sized packets injected with a small
// serialization gap. The experiment calls on_packet_egress() for every
// packet leaving the data plane; a flow completes when its last packet
// egresses, and its FCT lands in the short-/mid-/long-flow histogram.
#pragma once

#include <functional>
#include <unordered_map>

#include "net/packet_builder.hpp"
#include "net/packet_pool.hpp"
#include "sim/distributions.hpp"
#include "sim/event_queue.hpp"
#include "stats/histogram.hpp"

namespace mdp::workload {

struct RpcWorkloadConfig {
  std::uint64_t seed = 7;
  double mean_interarrival_ns = 200'000;  ///< flow arrival rate
  std::size_t mss = 1448;                 ///< payload bytes per packet
  sim::TimeNs pacing_gap_ns = 1'000;      ///< gap between a flow's packets
  std::size_t max_packets_per_flow = 512; ///< elephants truncated (sim cap)
  double short_flow_cutoff_bytes = 100'000;
};

class RpcWorkload {
 public:
  using Sink = std::function<void(net::PacketPtr)>;
  using FlowDone = std::function<void(std::uint32_t flow_id)>;

  RpcWorkload(sim::EventQueue& eq, net::PacketPool& pool,
              RpcWorkloadConfig cfg, sim::DistributionPtr flow_sizes,
              Sink sink);

  /// Launch `num_flows` flow arrivals.
  void start(std::uint64_t num_flows);

  /// Notify that a packet of `flow_id` left the data plane at `now_ns`.
  void on_packet_egress(std::uint32_t flow_id, sim::TimeNs now_ns);

  /// Invoked once per completed flow, after its FCT is recorded — lets
  /// the plane retire per-flow replication/dedup state promptly
  /// (MdpDataPlane::end_flow).
  void set_flow_done(FlowDone fn) { flow_done_ = std::move(fn); }

  const stats::LatencyHistogram& short_fct() const noexcept {
    return short_fct_;
  }
  const stats::LatencyHistogram& long_fct() const noexcept {
    return long_fct_;
  }
  const stats::LatencyHistogram& all_fct() const noexcept { return all_fct_; }
  std::uint64_t flows_started() const noexcept { return flows_started_; }
  std::uint64_t flows_completed() const noexcept { return flows_completed_; }
  /// Flows whose packets were partially lost (never completed).
  std::uint64_t flows_incomplete() const noexcept {
    return flows_started_ - flows_completed_;
  }

 private:
  void schedule_next_flow();
  void launch_flow();
  void emit_packet(std::uint32_t flow_id, std::uint32_t pkt_idx);

  struct FlowState {
    std::uint32_t packets_expected = 0;
    std::uint32_t packets_done = 0;
    sim::TimeNs start_ns = 0;
    double bytes = 0;
  };

  sim::EventQueue& eq_;
  net::PacketPool& pool_;
  RpcWorkloadConfig cfg_;
  sim::DistributionPtr flow_sizes_;
  Sink sink_;
  FlowDone flow_done_;
  sim::Rng rng_;
  sim::Exponential interarrival_;
  std::unordered_map<std::uint32_t, FlowState> flows_;
  std::uint64_t remaining_ = 0;
  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
  std::uint32_t next_flow_id_ = 1;
  stats::LatencyHistogram short_fct_;
  stats::LatencyHistogram long_fct_;
  stats::LatencyHistogram all_fct_;
};

}  // namespace mdp::workload
