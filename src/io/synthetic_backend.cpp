#include "io/synthetic_backend.hpp"

#include <algorithm>

#include "net/flow_key.hpp"
#include "net/packet_builder.hpp"

namespace mdp::io {

SyntheticBackend::SyntheticBackend(SyntheticConfig cfg)
    : cfg_(cfg),
      pool_(std::make_unique<net::PacketPool>(cfg.pool_size,
                                              cfg.buf_capacity,
                                              /*allow_growth=*/false)),
      flow_seq_(cfg.num_flows ? cfg.num_flows : 1, 0) {
  if (cfg_.num_flows == 0) cfg_.num_flows = 1;
  caps_.name = "synthetic";
  caps_.max_burst = 256;
  caps_.queue_depth = cfg_.pool_size;
  caps_.needs_peer_frames = false;
}

std::size_t SyntheticBackend::rx_burst(std::span<net::PacketPtr> out) {
  std::size_t n = 0;
  for (; n < out.size(); ++n) {
    if (cfg_.rx_limit && next_ >= cfg_.rx_limit) break;
    net::PacketPtr pkt;
    const std::uint32_t flow =
        static_cast<std::uint32_t>(next_ % cfg_.num_flows);
    if (cfg_.build_frames) {
      net::BuildSpec spec;
      spec.flow = {0x0a000001 + flow, 0x0a000100,
                   static_cast<std::uint16_t>(1024 + flow), 4789, 0};
      spec.payload_len = cfg_.payload_bytes;
      pkt = net::build_udp(*pool_, spec);
    } else {
      pkt = pool_->alloc();
      if (pkt) pkt->set_length(std::min(cfg_.payload_bytes,
                                        pkt->tailroom()));
    }
    if (!pkt) break;  // pool momentarily exhausted: partial burst
    auto& a = pkt->anno();
    a.flow_id = flow;
    a.seq = flow_seq_[flow]++;
    a.flow_hash = net::mix64(cfg_.seed ^ (std::uint64_t{flow} + 1));
    out[n] = std::move(pkt);
    ++next_;
  }
  rx_packets_ += n;
  return n;
}

std::size_t SyntheticBackend::tx_burst(std::span<net::PacketPtr> pkts) {
  // Egress is a sink: dropping the handle recycles into the pool.
  std::size_t n = 0;
  for (auto& pkt : pkts) {
    if (pkt) pkt.reset();
    ++n;
  }
  tx_packets_ += n;
  return n;
}

}  // namespace mdp::io
