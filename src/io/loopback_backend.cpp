#include "io/loopback_backend.hpp"

#include <algorithm>

namespace mdp::io {

namespace {

void recycle_raw(net::Packet* p) noexcept {
  if (p && p->pool()) p->pool()->recycle(p);
}

}  // namespace

LoopbackBackend::LoopbackBackend(LoopbackConfig cfg) : cfg_(cfg) {
  if (cfg_.queue_depth < 2) cfg_.queue_depth = 2;
  caps_.name = "loopback";
  caps_.max_burst = cfg_.max_burst;
  caps_.queue_depth = cfg_.queue_depth;
  caps_.numa_node = cfg_.numa_node;
  caps_.split_rx_tx = true;
  caps_.needs_peer_frames = true;
  // Self-connected by default; make_pair() rewires rx to the peer's tx.
  tx_ring_ = std::make_shared<Ring>(cfg_.queue_depth);
  rx_ring_ = tx_ring_;
}

std::pair<std::unique_ptr<LoopbackBackend>, std::unique_ptr<LoopbackBackend>>
LoopbackBackend::make_pair(LoopbackConfig cfg) {
  auto a = std::make_unique<LoopbackBackend>(cfg);
  auto b = std::make_unique<LoopbackBackend>(cfg);
  // Cross-connect: a's outbound wire is b's inbound and vice versa.
  a->rx_ring_ = b->tx_ring_;
  b->rx_ring_ = a->tx_ring_;
  return {std::move(a), std::move(b)};
}

LoopbackBackend::~LoopbackBackend() {
  // Recycle whatever this endpoint still owns: its staged frames and its
  // inbound wire (the peer's destructor handles the other direction; for a
  // self-loop both are the same ring, drained once here).
  while (!staged_.empty()) {
    recycle_raw(staged_.top().pkt);
    staged_.pop();
  }
  net::Packet* p = nullptr;
  while (rx_ring_ && rx_ring_->try_pop(p)) recycle_raw(p);
}

std::uint64_t LoopbackBackend::next_u64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);  // splitmix64
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double LoopbackBackend::next_unit(std::uint64_t& state) noexcept {
  return static_cast<double>(next_u64(state) >> 11) * 0x1.0p-53;
}

std::uint64_t& LoopbackBackend::rng_for_path(std::uint16_t path) {
  if (path >= rng_state_.size()) {
    const std::size_t old = rng_state_.size();
    rng_state_.resize(path + 1);
    for (std::size_t p = old; p < rng_state_.size(); ++p)
      rng_state_[p] = cfg_.seed * 0x9e3779b97f4a7c15ull + p + 1;
  }
  return rng_state_[path];
}

void LoopbackBackend::set_path_faults(std::uint16_t path,
                                      const LoopbackFaults& faults) {
  if (path >= faults_.size()) faults_.resize(path + 1);
  faults_[path] = faults;
  rng_for_path(path);  // materialize the stream eagerly
  if (faults.drop_rate > 0 || faults.dup_rate > 0 ||
      faults.reorder_rate > 0 || faults.delay_ticks > 0)
    caps_.injects_faults = true;
}

std::size_t LoopbackBackend::in_flight() const noexcept {
  return staged_.size() + tx_ring_->size();
}

void LoopbackBackend::release_due() {
  while (!staged_.empty() && staged_.top().due_tick <= tick_) {
    if (!tx_ring_->try_push(staged_.top().pkt)) break;  // wire full: later
    staged_.pop();
  }
}

std::size_t LoopbackBackend::tx_burst(std::span<net::PacketPtr> pkts) {
  ++tick_;
  static const LoopbackFaults kClean{};
  std::size_t n = 0;
  for (auto& handle : pkts) {
    if (n >= caps_.max_burst) break;
    if (!handle) {  // null slots are consumed and ignored
      ++n;
      continue;
    }
    if (in_flight() >= cfg_.queue_depth) break;  // partial-burst rule
    const std::uint16_t path = handle->anno().path_id;
    const LoopbackFaults& lane =
        path < faults_.size() ? faults_[path] : kClean;

    if (lane.drop_rate > 0 &&
        next_unit(rng_for_path(path)) < lane.drop_rate) {
      handle.reset();  // the wire ate it: recycled to its pool
      ++dropped_;
      ++n;
      ++tx_packets_;
      continue;
    }

    std::uint64_t due = tick_ + lane.delay_ticks;
    if (lane.reorder_rate > 0 &&
        next_unit(rng_for_path(path)) < lane.reorder_rate) {
      due += lane.reorder_extra_ticks;
      ++reordered_;
    }

    net::PacketPtr dup;
    if (lane.dup_rate > 0 &&
        next_unit(rng_for_path(path)) < lane.dup_rate &&
        in_flight() + 1 < cfg_.queue_depth) {
      dup = handle->pool()->clone(*handle);
      if (dup) {
        dup->anno().is_replica = true;
        dup->anno().copy_index =
            static_cast<std::uint8_t>(handle->anno().copy_index + 1);
      }
    }

    staged_.push(Staged{due, tx_order_++, handle.release()});
    if (dup) {
      staged_.push(Staged{due, tx_order_++, dup.release()});
      ++duplicated_;
    }
    ++n;
    ++tx_packets_;
  }
  release_due();
  tx_rejected_ += pkts.size() > n ? pkts.size() - n : 0;
  return n;
}

void LoopbackBackend::advance(std::uint32_t ticks) {
  tick_ += ticks;
  release_due();
}

std::size_t LoopbackBackend::flush() {
  std::size_t released = 0;
  while (!staged_.empty()) {
    if (!tx_ring_->try_push(staged_.top().pkt)) break;
    staged_.pop();
    ++released;
  }
  return released;
}

std::size_t LoopbackBackend::rx_burst(std::span<net::PacketPtr> out) {
  std::size_t n = 0;
  const std::size_t want = std::min(out.size(), caps_.max_burst);
  net::Packet* p = nullptr;
  while (n < want && rx_ring_->try_pop(p)) out[n++] = net::PacketPtr(p);
  rx_packets_ += n;
  return n;
}

}  // namespace mdp::io
