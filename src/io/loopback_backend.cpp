#include "io/loopback_backend.hpp"

#include <algorithm>

namespace mdp::io {

namespace {

void recycle_raw(net::Packet* p) noexcept {
  if (p && p->pool()) p->pool()->recycle(p);
}

}  // namespace

LoopbackBackend::LoopbackBackend(LoopbackConfig cfg) : cfg_(cfg) {
  if (cfg_.queue_depth < 2) cfg_.queue_depth = 2;
  caps_.name = "loopback";
  caps_.max_burst = cfg_.max_burst;
  caps_.queue_depth = cfg_.queue_depth;
  caps_.numa_node = cfg_.numa_node;
  caps_.split_rx_tx = true;
  caps_.needs_peer_frames = true;
  // Self-connected by default; make_pair() rewires rx to the peer's tx.
  tx_ring_ = std::make_shared<Ring>(
      cfg_.ring_capacity ? cfg_.ring_capacity : cfg_.queue_depth);
  rx_ring_ = tx_ring_;
  tx_scratch_.reserve(cfg_.max_burst * 2);  // originals + dup clones
  rx_scratch_.resize(cfg_.max_burst);
}

std::pair<std::unique_ptr<LoopbackBackend>, std::unique_ptr<LoopbackBackend>>
LoopbackBackend::make_pair(LoopbackConfig cfg) {
  auto a = std::make_unique<LoopbackBackend>(cfg);
  auto b = std::make_unique<LoopbackBackend>(cfg);
  // Cross-connect: a's outbound wire is b's inbound and vice versa.
  a->rx_ring_ = b->tx_ring_;
  b->rx_ring_ = a->tx_ring_;
  return {std::move(a), std::move(b)};
}

LoopbackBackend::~LoopbackBackend() {
  // Recycle everything this endpoint can still reach. Both wire rings are
  // drained (not just the inbound one) so clones from this endpoint's slab
  // never outlive it inside a shared ring; caller-pool frames recycle to
  // their own pools, which outlive both endpoints per the header contract.
  std::uint64_t due = 0;
  while (net::Packet** e = staged_.peek_any(&due)) {
    recycle_raw(*e);
    staged_.pop_front();
  }
  net::Packet* p = nullptr;
  while (rx_ring_ && rx_ring_->try_pop(p)) recycle_raw(p);
  if (tx_ring_ && tx_ring_ != rx_ring_)
    while (tx_ring_->try_pop(p)) recycle_raw(p);
}

std::uint64_t LoopbackBackend::next_u64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);  // splitmix64
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double LoopbackBackend::next_unit(std::uint64_t& state) noexcept {
  return static_cast<double>(next_u64(state) >> 11) * 0x1.0p-53;
}

std::uint64_t& LoopbackBackend::rng_for_path(std::uint16_t path) {
  if (path >= rng_state_.size()) {
    const std::size_t old = rng_state_.size();
    rng_state_.resize(path + 1);
    for (std::size_t p = old; p < rng_state_.size(); ++p)
      rng_state_[p] = cfg_.seed * 0x9e3779b97f4a7c15ull + p + 1;
  }
  return rng_state_[path];
}

void LoopbackBackend::set_path_faults(std::uint16_t path,
                                      const LoopbackFaults& faults) {
  if (path >= faults_.size()) faults_.resize(path + 1);
  faults_[path] = faults;
  rng_for_path(path);  // materialize the stream eagerly
  if (faults.drop_rate > 0 || faults.dup_rate > 0 ||
      faults.reorder_rate > 0 || faults.delay_ticks > 0)
    caps_.injects_faults = true;
  // Size the calendar wheel for the worst-case hold-back across lanes.
  std::uint64_t horizon = 0;
  for (const auto& lane : faults_)
    horizon = std::max<std::uint64_t>(
        horizon, lane.delay_ticks + lane.reorder_extra_ticks);
  staged_.ensure_horizon(horizon);
}

std::size_t LoopbackBackend::in_flight() const noexcept {
  return staged_.size() + tx_ring_->size();
}

net::PacketPtr LoopbackBackend::clone_from_slab(const net::Packet& src) {
  if (!clone_slab_) {
    clone_slab_ = std::make_unique<net::PacketPool>(
        cfg_.queue_depth, src.capacity(), /*allow_growth=*/true);
  } else if (clone_slab_->buf_capacity() < src.capacity()) {
    // Oversized frame for the slab: fall back to the source pool.
    return src.pool() ? src.pool()->clone(src) : net::PacketPtr{};
  }
  return clone_slab_->clone(src);
}

void LoopbackBackend::release_due() {
  while (net::Packet** e = staged_.peek(tick_)) {
    if (!tx_ring_->try_push(*e)) break;  // wire full: later
    staged_.pop_front();
  }
}

std::size_t LoopbackBackend::tx_burst(std::span<net::PacketPtr> pkts) {
  const std::size_t limit = std::min(pkts.size(), caps_.max_burst);
  release_due();
  // Strict (due, tx order) delivery: direct ring pushes are only legal
  // while nothing already-due is stuck behind a full ring.
  const bool can_direct = staged_.peek(tick_) == nullptr;
  // Occupancy snapshot; the ring can only drain concurrently, so this is
  // a conservative stand-in for calling in_flight() per frame.
  std::size_t occupied = staged_.size() + tx_ring_->size();

  static const LoopbackFaults kClean{};
  const LoopbackFaults* lane = &kClean;
  bool lane_faulty = false;
  std::uint64_t* rng = nullptr;
  std::uint32_t cur_path = UINT32_MAX;

  std::uint64_t local_tx = 0, local_drop = 0, local_dup = 0, local_reord = 0;
  std::size_t n = 0;
  for (; n < limit; ++n) {
    auto& handle = pkts[n];
    if (!handle) continue;  // null slots are consumed and ignored
    if (occupied >= cfg_.queue_depth) break;  // partial-burst rule

    const std::uint16_t path = handle->anno().path_id;
    if (path != cur_path) {
      cur_path = path;
      lane = path < faults_.size() ? &faults_[path] : &kClean;
      lane_faulty = lane->drop_rate > 0 || lane->dup_rate > 0 ||
                    lane->reorder_rate > 0 || lane->delay_ticks > 0;
      rng = lane_faulty ? &rng_for_path(path) : nullptr;
    }

    if (!lane_faulty) {  // clean lane: gather for one bulk wire push
      if (can_direct) {
        tx_scratch_.push_back(handle.release());
      } else {
        staged_.push(tick_, handle.release());
      }
      ++occupied;
      ++local_tx;
      continue;
    }

    if (lane->drop_rate > 0 && next_unit(*rng) < lane->drop_rate) {
      handle.reset();  // the wire ate it: recycled to its pool
      ++local_drop;
      ++local_tx;
      continue;
    }

    std::uint64_t due = tick_ + lane->delay_ticks;
    if (lane->reorder_rate > 0 && next_unit(*rng) < lane->reorder_rate) {
      due += lane->reorder_extra_ticks;
      ++local_reord;
    }

    net::PacketPtr dup;
    if (lane->dup_rate > 0 && next_unit(*rng) < lane->dup_rate &&
        occupied + 1 < cfg_.queue_depth) {
      dup = clone_from_slab(*handle);
      if (dup) {
        dup->anno().is_replica = true;
        dup->anno().copy_index =
            static_cast<std::uint8_t>(handle->anno().copy_index + 1);
      }
    }

    const bool had_dup = static_cast<bool>(dup);
    if (can_direct && due == tick_) {
      tx_scratch_.push_back(handle.release());
      if (had_dup) tx_scratch_.push_back(dup.release());
    } else {
      staged_.push(due, handle.release());
      if (had_dup) staged_.push(due, dup.release());
    }
    ++occupied;
    if (had_dup) {
      ++occupied;
      ++local_dup;
    }
    ++local_tx;
  }

  if (!tx_scratch_.empty()) {
    const std::size_t pushed =
        tx_ring_->try_push_burst({tx_scratch_.data(), tx_scratch_.size()});
    // Ring filled mid-push: keep the leftovers staged at the current tick
    // so (due, tx order) delivery survives the backpressure.
    for (std::size_t i = pushed; i < tx_scratch_.size(); ++i)
      staged_.push(tick_, tx_scratch_[i]);
    tx_scratch_.clear();
  }

  tx_packets_ += local_tx;
  dropped_ += local_drop;
  duplicated_ += local_dup;
  reordered_ += local_reord;
  tx_rejected_ += pkts.size() > n ? pkts.size() - n : 0;
  return n;
}

void LoopbackBackend::advance(std::uint32_t ticks) {
  tick_ += ticks;
  release_due();
}

std::size_t LoopbackBackend::flush() {
  std::size_t released = 0;
  std::uint64_t due = 0;
  while (net::Packet** e = staged_.peek_any(&due)) {
    if (!tx_ring_->try_push(*e)) break;
    staged_.pop_front();
    ++released;
  }
  return released;
}

std::size_t LoopbackBackend::rx_burst(std::span<net::PacketPtr> out) {
  const std::size_t want = std::min(out.size(), caps_.max_burst);
  if (want == 0) return 0;
  const std::size_t n = rx_ring_->try_pop_burst({rx_scratch_.data(), want});
  for (std::size_t i = 0; i < n; ++i) out[i] = net::PacketPtr(rx_scratch_[i]);
  rx_packets_ += n;
  return n;
}

}  // namespace mdp::io
