// PacketBackend: the packet I/O boundary of the data plane.
//
// A backend is a burst-oriented RX/TX port, DPDK-shaped: rx_burst() fills a
// span with owning net::PacketPtr handles, tx_burst() consumes a prefix of
// one. Everything above this interface (dispatch, per-path rings, workers,
// merge, reorder) is backend-agnostic; everything below it (a synthetic
// generator, an in-memory loopback wire, AF_PACKET ring buffers, one day
// AF_XDP/DPDK) is swappable. The conformance suite in
// tests/test_backend_conformance.cpp is the contract every implementation
// must pass — see docs/IO_BACKENDS.md.
//
// Ownership contract:
//   - rx_burst(out) writes up to out.size() owning packets into out[0..n)
//     and returns n. The caller owns them from that point on.
//   - tx_burst(pkts) accepts a prefix: it takes ownership of (and nulls)
//     pkts[0..n) and returns n. Entries [n..) are NOT consumed — they stay
//     valid, owned by the caller, who decides to retry, reroute, or drop.
//     This is the partial-burst rule a nearly-full port enforces.
//
// Threading contract: a backend is a single-caller object per direction.
// rx_burst and tx_burst may be driven from two different threads only when
// caps().split_rx_tx is true (the loopback endpoints are SPSC per
// direction); no function may be called concurrently with itself. Packet
// pools are single-threaded, so every pool a backend allocates from or
// recycles into must only ever be touched from that direction's thread.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"

namespace mdp::io {

/// Static capabilities/placement hints a backend reports once at setup.
/// Capacity hints size the rings above the backend; the NUMA hint feeds
/// the (future) socket-aware path placement from the ROADMAP.
struct BackendCaps {
  std::string name;            ///< stable identifier ("synthetic", ...)
  std::size_t max_burst = 256; ///< largest rx/tx burst honored per call
  std::size_t queue_depth = 0; ///< per-direction buffering, 0 = unbounded
  int numa_node = -1;          ///< preferred NUMA node, -1 = no affinity
  bool split_rx_tx = false;    ///< rx and tx may run on different threads
  bool injects_faults = false; ///< delivery may drop/dup/reorder/delay
  /// True when rx only yields frames some peer transmitted (loopback,
  /// real NICs); false for self-generating backends (synthetic).
  bool needs_peer_frames = false;
};

class PacketBackend {
 public:
  virtual ~PacketBackend() = default;

  virtual const BackendCaps& caps() const noexcept = 0;

  /// Bring the port up. Returns false (with *err set) on failure; a
  /// backend must tolerate start/stop cycles.
  virtual bool start(std::string* err = nullptr) {
    (void)err;
    return true;
  }
  virtual void stop() {}

  /// Receive up to out.size() packets. Every returned packet carries a
  /// populated anno().flow_hash (backends parse or synthesize it) so the
  /// dispatch policy never re-walks headers on the hot path.
  virtual std::size_t rx_burst(std::span<net::PacketPtr> out) = 0;

  /// Transmit a prefix of pkts (see the ownership contract above).
  virtual std::size_t tx_burst(std::span<net::PacketPtr> pkts) = 0;

  // Lifetime counters (single-writer per direction, read at quiesce).
  std::uint64_t rx_packets() const noexcept { return rx_packets_; }
  std::uint64_t tx_packets() const noexcept { return tx_packets_; }
  std::uint64_t tx_rejected() const noexcept { return tx_rejected_; }

 protected:
  std::uint64_t rx_packets_ = 0;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t tx_rejected_ = 0;
};

}  // namespace mdp::io
