// AfPacketBackend: real frames from a Linux interface via AF_PACKET with
// PACKET_MMAP (TPACKET_V2) RX/TX rings — the first hardware-facing
// implementation of PacketBackend.
//
// Built only when -DMDP_WITH_AF_PACKET=ON (not in CI: it needs CAP_NET_RAW
// and a real interface, neither of which a shared runner has). The
// conformance suite registers it when compiled in but skips execution
// unless MDP_AF_PACKET_IFACE names an interface the runner may open.
//
// Frames are copied between the kernel ring and pool packets (no
// zero-copy yet): rx_burst walks user-owned ring slots, copies each frame
// into a pool packet, parses it to populate anno().flow_hash, and returns
// the slot to the kernel; tx_burst copies payloads into free TX slots,
// marks them send-requested, and kicks the socket with a non-blocking
// sendto. Single caller per direction (caps().split_rx_tx = true: the two
// rings are independent).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "io/packet_backend.hpp"
#include "net/packet_pool.hpp"

namespace mdp::io {

struct AfPacketConfig {
  std::string interface = "lo";
  std::size_t frame_size = 2048;   ///< TPACKET_V2 frame slot size
  std::size_t frames_per_ring = 512;
  std::size_t pool_size = 4096;
  int numa_node = -1;
  bool promiscuous = false;
};

class AfPacketBackend final : public PacketBackend {
 public:
  explicit AfPacketBackend(AfPacketConfig cfg = {});
  ~AfPacketBackend() override;

  const BackendCaps& caps() const noexcept override { return caps_; }
  bool start(std::string* err = nullptr) override;
  void stop() override;
  std::size_t rx_burst(std::span<net::PacketPtr> out) override;
  std::size_t tx_burst(std::span<net::PacketPtr> pkts) override;

  net::PacketPool& pool() noexcept { return *pool_; }

 private:
  struct Ring;  // mmap'd TPACKET_V2 ring (defined in the .cpp)

  AfPacketConfig cfg_;
  BackendCaps caps_;
  std::unique_ptr<net::PacketPool> pool_;
  int fd_ = -1;
  std::unique_ptr<Ring> rx_;
  std::unique_ptr<Ring> tx_;
};

}  // namespace mdp::io
