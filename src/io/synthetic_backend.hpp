// SyntheticBackend: the default CI packet source — the hash-synthesizing
// generator the threaded plane grew up on, repackaged behind PacketBackend.
//
// rx_burst allocates pool packets and stamps them with a deterministic
// golden-ratio flow-hash stream (round-robin over cfg.num_flows flows,
// per-flow sequence numbers), optionally building a real UDP frame for the
// bytes; tx_burst counts the packet out and recycles it. No wire, no
// faults: what the plane accepts is exactly what it egresses, which is
// what makes this the counter-equivalence baseline the conformance suite
// compares fault-injecting backends against.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "io/packet_backend.hpp"
#include "net/packet_pool.hpp"

namespace mdp::io {

struct SyntheticConfig {
  std::size_t pool_size = 8192;
  std::size_t buf_capacity = 2048;
  std::size_t payload_bytes = 64;  ///< payload length stamped on rx packets
  std::size_t num_flows = 64;      ///< distinct flow ids in the stream
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  /// Build a full Ethernet/IPv4/UDP frame per packet instead of a raw
  /// payload region. Slower; on only when frame parsing is under test.
  bool build_frames = false;
  /// Stop generating after this many packets (0 = endless). Lets a test
  /// drive an exact population through the plane.
  std::uint64_t rx_limit = 0;
};

class SyntheticBackend final : public PacketBackend {
 public:
  explicit SyntheticBackend(SyntheticConfig cfg = {});

  const BackendCaps& caps() const noexcept override { return caps_; }
  std::size_t rx_burst(std::span<net::PacketPtr> out) override;
  std::size_t tx_burst(std::span<net::PacketPtr> pkts) override;

  net::PacketPool& pool() noexcept { return *pool_; }

 private:
  SyntheticConfig cfg_;
  BackendCaps caps_;
  std::unique_ptr<net::PacketPool> pool_;
  std::uint64_t next_ = 0;                 ///< generator ordinal
  std::vector<std::uint64_t> flow_seq_;    ///< per-flow sequence numbers
};

}  // namespace mdp::io
