// LoopbackBackend: an in-memory wire made of SPSC rings, byte-for-byte
// lossless by default, with injectable per-path faults — the deterministic
// harness every backend-facing contract is tested against.
//
// Two endpoints (make_pair) are cross-connected: what A transmits, B
// receives, same net::Packet object, payload and annotations untouched.
// A standalone LoopbackBackend is self-connected (tx feeds its own rx),
// which is enough for single-port round-trip tests.
//
// Faults model the last mile the paper cares about. Each endpoint's TX
// direction has an independent fault lane per multipath path id (selected
// by anno().path_id at tx time):
//   - drop_rate      frame vanishes (recycled to its pool)
//   - dup_rate       a deep clone follows the original (is_replica set)
//   - delay_ticks    fixed extra delivery delay, in wire ticks
//   - reorder_rate / reorder_extra_ticks
//                    hit frames are held back so later frames overtake
// One wire tick elapses per tx_burst() (or advance()) call, so a given
// seed + offered stream yields the exact same delivery order every run —
// CI can assert on it. Frames whose delivery time hasn't come sit in a
// staging heap; flush() force-releases them (used at quiesce).
//
// Threading: the TX direction (tx_burst/advance/flush and all fault state,
// including pool recycle on drop and pool clone on dup) belongs to the
// producer thread; rx_burst to the consumer thread (caps().split_rx_tx).
// The frame pool must outlive both endpoints and is only ever touched from
// the TX side plus whoever owns the rx'd handles.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "io/packet_backend.hpp"
#include "ring/spsc_ring.hpp"

namespace mdp::io {

struct LoopbackFaults {
  double drop_rate = 0.0;
  double dup_rate = 0.0;
  double reorder_rate = 0.0;
  std::uint32_t reorder_extra_ticks = 4;  ///< hold-back applied on a hit
  std::uint32_t delay_ticks = 0;          ///< fixed per-path delay
};

struct LoopbackConfig {
  std::size_t queue_depth = 4096;  ///< per-direction bound (staged + ring)
  std::size_t max_burst = 256;
  std::uint64_t seed = 1;          ///< fault RNG seed (per-path streams)
  int numa_node = -1;
};

class LoopbackBackend final : public PacketBackend {
 public:
  /// Self-connected endpoint: tx_burst feeds this endpoint's own rx_burst.
  explicit LoopbackBackend(LoopbackConfig cfg = {});

  /// Cross-connected pair: first.tx -> second.rx and vice versa.
  static std::pair<std::unique_ptr<LoopbackBackend>,
                   std::unique_ptr<LoopbackBackend>>
  make_pair(LoopbackConfig cfg = {});

  ~LoopbackBackend() override;

  const BackendCaps& caps() const noexcept override { return caps_; }
  std::size_t rx_burst(std::span<net::PacketPtr> out) override;
  std::size_t tx_burst(std::span<net::PacketPtr> pkts) override;

  /// Install a fault lane on this endpoint's TX direction for `path`.
  void set_path_faults(std::uint16_t path, const LoopbackFaults& faults);

  /// Advance the wire clock without transmitting: releases staged frames
  /// whose delivery tick has come.
  void advance(std::uint32_t ticks = 1);

  /// Force-release staged frames regardless of delivery tick (quiesce
  /// helper; delivery order stays (due_tick, tx order)). Releases at most
  /// what the wire ring can hold — interleave with rx_burst and repeat
  /// until in_flight() is 0. Returns the number released.
  std::size_t flush();

  // Fault observability (TX-thread counters, read at quiesce).
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t duplicated() const noexcept { return duplicated_; }
  std::uint64_t reordered() const noexcept { return reordered_; }
  std::uint64_t tick() const noexcept { return tick_; }
  /// Frames accepted by tx but not yet rx'd (staged + in-ring).
  std::size_t in_flight() const noexcept;

 private:
  using Ring = ring::SpscRing<net::Packet*>;

  struct Staged {
    std::uint64_t due_tick;
    std::uint64_t order;
    net::Packet* pkt;
    bool operator<(const Staged& o) const noexcept {  // min-heap via >
      return due_tick != o.due_tick ? due_tick > o.due_tick
                                    : order > o.order;
    }
  };

  void release_due();
  std::uint64_t next_u64(std::uint64_t& state) noexcept;
  double next_unit(std::uint64_t& state) noexcept;
  std::uint64_t& rng_for_path(std::uint16_t path);

  LoopbackConfig cfg_;
  BackendCaps caps_;
  std::shared_ptr<Ring> tx_ring_;  ///< this endpoint's outbound wire
  std::shared_ptr<Ring> rx_ring_;  ///< this endpoint's inbound wire
  std::vector<LoopbackFaults> faults_;     // indexed by path id
  std::vector<std::uint64_t> rng_state_;   // one stream per path id
  std::priority_queue<Staged> staged_;
  std::uint64_t tick_ = 0;
  std::uint64_t tx_order_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
};

}  // namespace mdp::io
