// LoopbackBackend: an in-memory wire made of SPSC rings, byte-for-byte
// lossless by default, with injectable per-path faults — the deterministic
// harness every backend-facing contract is tested against.
//
// Two endpoints (make_pair) are cross-connected: what A transmits, B
// receives, same net::Packet object, payload and annotations untouched.
// A standalone LoopbackBackend is self-connected (tx feeds its own rx),
// which is enough for single-port round-trip tests.
//
// The wire is burst-native: a clean-lane burst is one batched pass over the
// span and one bulk ring push — no staging, no per-frame heap traffic, no
// clock arithmetic. Frames that faults hold back move to a calendar queue
// of tick buckets (ring::CalendarQueue) instead of a heap, and dup-lane
// clones come from a dedicated backend-owned slab pool so the caller's pool
// accounting (in_use, allocs==recycles) never sees wire-internal copies.
//
// Faults model the last mile the paper cares about. Each endpoint's TX
// direction has an independent fault lane per multipath path id (selected
// by anno().path_id at tx time):
//   - drop_rate      frame vanishes (recycled to its pool)
//   - dup_rate       a deep clone follows the original (is_replica set)
//   - delay_ticks    fixed extra delivery delay, in wire ticks
//   - reorder_rate / reorder_extra_ticks
//                    hit frames are held back so later frames overtake
// Fault decisions are strictly per-frame — one splitmix64 stream per path,
// drawn in frame order — so a given seed + offered stream yields the exact
// same delivery order and counters no matter how the stream is chunked
// into bursts. CI asserts on this.
//
// Wire time is explicit: advance() is the only clock. tx_burst() stamps
// frames with the current tick and never advances it, so drivers own the
// time/data ratio (the chaos rig advances once per iteration; a clean
// echo loop never needs to advance at all). Frames whose delivery tick
// hasn't come sit in the calendar queue; flush() force-releases them in
// (due tick, tx order) — used at quiesce.
//
// Threading: the TX direction (tx_burst/advance/flush and all fault state,
// including pool recycle on drop and the clone slab) belongs to the
// producer thread; rx_burst to the consumer thread (caps().split_rx_tx).
// The frame pool must outlive both endpoints and is only ever touched from
// the TX side plus whoever owns the rx'd handles.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "io/packet_backend.hpp"
#include "ring/calendar_queue.hpp"
#include "ring/spsc_ring.hpp"

namespace mdp::io {

struct LoopbackFaults {
  double drop_rate = 0.0;
  double dup_rate = 0.0;
  double reorder_rate = 0.0;
  std::uint32_t reorder_extra_ticks = 4;  ///< hold-back applied on a hit
  std::uint32_t delay_ticks = 0;          ///< fixed per-path delay
};

struct LoopbackConfig {
  std::size_t queue_depth = 4096;  ///< per-direction bound (staged + ring)
  /// Wire ring slots (0 = queue_depth). Smaller than queue_depth models a
  /// shallow rx ring: staged frames then back-pressure in flush()/advance()
  /// and release partially — drain rx and repeat.
  std::size_t ring_capacity = 0;
  std::size_t max_burst = 256;
  std::uint64_t seed = 1;          ///< fault RNG seed (per-path streams)
  int numa_node = -1;
};

class LoopbackBackend final : public PacketBackend {
 public:
  /// Self-connected endpoint: tx_burst feeds this endpoint's own rx_burst.
  explicit LoopbackBackend(LoopbackConfig cfg = {});

  /// Cross-connected pair: first.tx -> second.rx and vice versa.
  static std::pair<std::unique_ptr<LoopbackBackend>,
                   std::unique_ptr<LoopbackBackend>>
  make_pair(LoopbackConfig cfg = {});

  ~LoopbackBackend() override;

  const BackendCaps& caps() const noexcept override { return caps_; }
  std::size_t rx_burst(std::span<net::PacketPtr> out) override;
  std::size_t tx_burst(std::span<net::PacketPtr> pkts) override;

  /// Install a fault lane on this endpoint's TX direction for `path`.
  void set_path_faults(std::uint16_t path, const LoopbackFaults& faults);

  /// Advance the wire clock — the only thing that does. Releases staged
  /// frames whose delivery tick has come.
  void advance(std::uint32_t ticks = 1);

  /// Force-release staged frames regardless of delivery tick (quiesce
  /// helper; delivery order stays (due_tick, tx order)). Releases at most
  /// what the wire ring can hold — interleave with rx_burst and repeat
  /// until in_flight() is 0. Returns the number released.
  std::size_t flush();

  // Fault observability (TX-thread counters, read at quiesce).
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t duplicated() const noexcept { return duplicated_; }
  std::uint64_t reordered() const noexcept { return reordered_; }
  std::uint64_t tick() const noexcept { return tick_; }
  /// Frames accepted by tx but not yet rx'd (staged + in-ring).
  std::size_t in_flight() const noexcept;

 private:
  using Ring = ring::SpscRing<net::Packet*>;

  void release_due();
  net::PacketPtr clone_from_slab(const net::Packet& src);
  static std::uint64_t next_u64(std::uint64_t& state) noexcept;
  static double next_unit(std::uint64_t& state) noexcept;
  std::uint64_t& rng_for_path(std::uint16_t path);

  LoopbackConfig cfg_;
  BackendCaps caps_;
  /// Dup-lane clones live here, not in the caller's pool: the slab is
  /// created lazily on the first dup hit (sized off the source frame's
  /// buffers) and clones recycle back into it through their pool pointer.
  std::unique_ptr<net::PacketPool> clone_slab_;
  std::shared_ptr<Ring> tx_ring_;  ///< this endpoint's outbound wire
  std::shared_ptr<Ring> rx_ring_;  ///< this endpoint's inbound wire
  std::vector<LoopbackFaults> faults_;     // indexed by path id
  std::vector<std::uint64_t> rng_state_;   // one stream per path id
  ring::CalendarQueue<net::Packet*> staged_;  // held-back frames, by due tick
  std::vector<net::Packet*> tx_scratch_;   // clean-run gather (TX thread)
  std::vector<net::Packet*> rx_scratch_;   // bulk pop staging (RX thread)
  std::uint64_t tick_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
};

}  // namespace mdp::io
