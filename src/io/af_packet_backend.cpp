#include "io/af_packet_backend.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>

#include <linux/if_packet.h>
#include <net/ethernet.h>
#include <net/if.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/flow_key.hpp"
#include "net/packet_builder.hpp"

namespace mdp::io {

// One mmap'd TPACKET_V2 ring (RX or TX): a contiguous block of
// `frame_count` fixed-size slots, each starting with a tpacket2_hdr whose
// tp_status field is the kernel/user handshake.
struct AfPacketBackend::Ring {
  std::byte* map = nullptr;
  std::size_t map_len = 0;
  std::size_t frame_size = 0;
  std::size_t frame_count = 0;
  std::size_t next = 0;  ///< next slot to inspect (rings are in-order)

  tpacket2_hdr* slot(std::size_t i) const noexcept {
    return reinterpret_cast<tpacket2_hdr*>(map + i * frame_size);
  }
};

namespace {

bool set_errstr(std::string* err, const std::string& what) {
  if (err) *err = what + ": " + std::strerror(errno);
  return false;
}

}  // namespace

AfPacketBackend::AfPacketBackend(AfPacketConfig cfg)
    : cfg_(cfg),
      pool_(std::make_unique<net::PacketPool>(cfg.pool_size, cfg.frame_size,
                                              /*allow_growth=*/false)) {
  caps_.name = "af_packet";
  caps_.max_burst = 256;
  caps_.queue_depth = cfg_.frames_per_ring;
  caps_.numa_node = cfg_.numa_node;
  caps_.split_rx_tx = true;
  caps_.needs_peer_frames = true;
}

AfPacketBackend::~AfPacketBackend() { stop(); }

bool AfPacketBackend::start(std::string* err) {
  if (fd_ >= 0) return true;
  fd_ = ::socket(AF_PACKET, SOCK_RAW, htons(ETH_P_ALL));
  if (fd_ < 0) return set_errstr(err, "socket(AF_PACKET)");

  const int ifindex = static_cast<int>(if_nametoindex(cfg_.interface.c_str()));
  if (ifindex == 0) {
    stop();
    return set_errstr(err, "if_nametoindex(" + cfg_.interface + ")");
  }

  const int version = TPACKET_V2;
  if (::setsockopt(fd_, SOL_PACKET, PACKET_VERSION, &version,
                   sizeof(version)) < 0) {
    stop();
    return set_errstr(err, "setsockopt(PACKET_VERSION)");
  }

  tpacket_req req{};
  req.tp_frame_size = static_cast<unsigned>(cfg_.frame_size);
  req.tp_frame_nr = static_cast<unsigned>(cfg_.frames_per_ring);
  // One ring block keeps the layout trivial: block = whole ring.
  req.tp_block_size =
      static_cast<unsigned>(cfg_.frame_size * cfg_.frames_per_ring);
  req.tp_block_nr = 1;
  if (::setsockopt(fd_, SOL_PACKET, PACKET_RX_RING, &req, sizeof(req)) < 0 ||
      ::setsockopt(fd_, SOL_PACKET, PACKET_TX_RING, &req, sizeof(req)) < 0) {
    stop();
    return set_errstr(err, "setsockopt(PACKET_*_RING)");
  }

  const std::size_t ring_len = req.tp_block_size;
  void* map = ::mmap(nullptr, ring_len * 2, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_LOCKED, fd_, 0);
  if (map == MAP_FAILED) {
    // MAP_LOCKED can exceed RLIMIT_MEMLOCK; retry unlocked.
    map = ::mmap(nullptr, ring_len * 2, PROT_READ | PROT_WRITE, MAP_SHARED,
                 fd_, 0);
  }
  if (map == MAP_FAILED) {
    stop();
    return set_errstr(err, "mmap(rx+tx rings)");
  }
  rx_ = std::make_unique<Ring>();
  tx_ = std::make_unique<Ring>();
  rx_->map = static_cast<std::byte*>(map);
  rx_->map_len = ring_len * 2;
  rx_->frame_size = cfg_.frame_size;
  rx_->frame_count = cfg_.frames_per_ring;
  tx_->map = rx_->map + ring_len;  // TX ring follows RX in the mapping
  tx_->frame_size = cfg_.frame_size;
  tx_->frame_count = cfg_.frames_per_ring;

  sockaddr_ll addr{};
  addr.sll_family = AF_PACKET;
  addr.sll_protocol = htons(ETH_P_ALL);
  addr.sll_ifindex = ifindex;
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    stop();
    return set_errstr(err, "bind(" + cfg_.interface + ")");
  }

  if (cfg_.promiscuous) {
    packet_mreq mreq{};
    mreq.mr_ifindex = ifindex;
    mreq.mr_type = PACKET_MR_PROMISC;
    ::setsockopt(fd_, SOL_PACKET, PACKET_ADD_MEMBERSHIP, &mreq,
                 sizeof(mreq));  // best-effort
  }
  return true;
}

void AfPacketBackend::stop() {
  if (rx_ && rx_->map) ::munmap(rx_->map, rx_->map_len);
  rx_.reset();
  tx_.reset();
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::size_t AfPacketBackend::rx_burst(std::span<net::PacketPtr> out) {
  if (!rx_) return 0;
  std::size_t n = 0;
  const std::size_t want = std::min(out.size(), caps_.max_burst);
  while (n < want) {
    tpacket2_hdr* hdr = rx_->slot(rx_->next);
    if (!(hdr->tp_status & TP_STATUS_USER)) break;  // kernel still owns it
    net::PacketPtr pkt = pool_->alloc();
    if (!pkt) break;  // leave the slot for the next call
    const std::byte* frame =
        reinterpret_cast<const std::byte*>(hdr) + hdr->tp_mac;
    if (pkt->assign({frame, hdr->tp_snaplen})) {
      auto parsed = net::parse(*pkt);
      if (parsed) {
        pkt->anno().flow_hash = net::hash_flow(parsed->flow);
        pkt->anno().flow_id =
            static_cast<std::uint32_t>(pkt->anno().flow_hash);
      }
      out[n++] = std::move(pkt);
    }
    // Truncated-assign packets fall out of scope here -> recycled.
    hdr->tp_status = TP_STATUS_KERNEL;
    rx_->next = (rx_->next + 1) % rx_->frame_count;
  }
  rx_packets_ += n;
  return n;
}

std::size_t AfPacketBackend::tx_burst(std::span<net::PacketPtr> pkts) {
  if (!tx_) return 0;
  std::size_t n = 0;
  const std::size_t want = std::min(pkts.size(), caps_.max_burst);
  while (n < want) {
    if (!pkts[n]) {  // null slots are consumed and ignored
      ++n;
      continue;
    }
    tpacket2_hdr* hdr = tx_->slot(tx_->next);
    if (hdr->tp_status != TP_STATUS_AVAILABLE) break;  // ring full
    net::Packet& pkt = *pkts[n];
    const std::size_t max_payload =
        tx_->frame_size - TPACKET2_HDRLEN + sizeof(sockaddr_ll);
    if (pkt.length() > max_payload) {  // cannot ever fit: drop, count
      ++tx_rejected_;
      pkts[n].reset();
      ++n;
      continue;
    }
    std::byte* dst = reinterpret_cast<std::byte*>(hdr) + TPACKET2_HDRLEN -
                     sizeof(sockaddr_ll);
    std::memcpy(dst, pkt.data(), pkt.length());
    hdr->tp_len = static_cast<unsigned>(pkt.length());
    hdr->tp_status = TP_STATUS_SEND_REQUEST;
    tx_->next = (tx_->next + 1) % tx_->frame_count;
    pkts[n].reset();  // ownership consumed
    ++n;
    ++tx_packets_;
  }
  if (n > 0) ::sendto(fd_, nullptr, 0, MSG_DONTWAIT, nullptr, 0);
  return n;
}

}  // namespace mdp::io
