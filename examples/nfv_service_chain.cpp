// NFV service chain example: build a realistic tenant-facing pipeline in
// the Click configuration language and watch each NF do its job.
//
// Topology (one last-mile path, written as config text):
//
//   source -> CheckIPHeader -> Firewall -> Nat -> LoadBalancer
//          -> Dpi (paints suspicious traffic) -> PaintSwitch
//             [0] clean  -> FlowMonitor -> sink
//             [1] dirty  -> scrubber counter -> Discard
//
//   $ ./nfv_service_chain
#include <cstdio>
#include <cstring>

#include "click/elements.hpp"
#include "click/router.hpp"
#include "net/packet_builder.hpp"
#include "nf/dpi.hpp"
#include "nf/firewall.hpp"
#include "nf/flow_monitor.hpp"
#include "nf/nat.hpp"

using namespace mdp;

int main() {
  sim::EventQueue eq;
  net::PacketPool pool(1024, 2048);
  click::Router router(click::Router::Context{&eq, &pool});

  const char* config = R"(
    // Tenant ingress pipeline
    chk  :: CheckIPHeader;
    fw   :: Firewall(default allow,
                     deny src 127.0.0.0/8,
                     deny src 192.0.2.0/24,
                     deny proto tcp dport 23);
    nat  :: Nat(203.0.113.1);
    lb   :: LoadBalancer(10.0.100.1, 10.0.200.1, 10.0.200.2, 10.0.200.3);
    dpi  :: Dpi(paint 1, "EVILPATTERN", "SELECT * FROM");
    ps   :: PaintSwitch;
    mon  :: FlowMonitor;
    clean :: Counter;
    dirty :: Counter;

    chk -> fw -> nat -> lb -> dpi -> ps;
    ps [0] -> mon -> clean -> Discard;
    ps [1] -> dirty -> Discard;
  )";

  std::string err;
  if (!router.configure(config, &err) || !router.initialize(&err)) {
    std::fprintf(stderr, "config error: %s\n", err.c_str());
    return 1;
  }

  // Send a mix of traffic through the chain head.
  auto* head = router.find("chk");
  auto send = [&](const char* src, std::uint16_t dport,
                  const char* payload) {
    net::BuildSpec spec;
    net::ipv4_from_string(src, &spec.flow.src_ip);
    net::ipv4_from_string("10.0.100.1", &spec.flow.dst_ip);
    spec.flow.src_port = 40000;
    spec.flow.dst_port = dport;
    spec.payload_len = std::strlen(payload);
    auto pkt = net::build_udp(pool, spec);
    auto parsed = net::parse(*pkt);
    std::memcpy(pkt->data() + parsed->payload_offset, payload,
                std::strlen(payload));
    head->push(0, std::move(pkt));
  };

  for (int i = 0; i < 500; ++i) {
    send("198.51.100.7", 80, "GET /index.html");       // normal web
    send("198.51.100.8", 443, "POST /api fine body");  // normal api
    if (i % 10 == 0) send("127.0.0.1", 80, "spoofed loopback");  // deny
    if (i % 25 == 0)
      send("198.51.100.9", 80, "id=1; SELECT * FROM users");  // DPI hit
  }

  auto* fw = router.find_as<nf::Firewall>("fw");
  auto* nat = router.find_as<nf::Nat>("nat");
  auto* mon = router.find_as<nf::FlowMonitor>("mon");
  std::printf("firewall: allowed=%llu denied=%llu\n",
              (unsigned long long)fw->allowed(),
              (unsigned long long)fw->denied());
  std::printf("nat: translated=%llu bindings=%zu\n",
              (unsigned long long)nat->translated(), nat->table().size());
  std::printf("clean=%llu dirty=%llu\n",
              (unsigned long long)router.find_as<click::Counter>("clean")
                  ->packets(),
              (unsigned long long)router.find_as<click::Counter>("dirty")
                  ->packets());

  std::printf("\ntop flows by bytes (post-NAT/LB 5-tuples):\n");
  for (const auto& [flow, st] : mon->core().top_k(3))
    std::printf("  %-45s %llu pkts %llu bytes\n", flow.to_string().c_str(),
                (unsigned long long)st.packets,
                (unsigned long long)st.bytes);
  return 0;
}
