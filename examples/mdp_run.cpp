// mdp_run: command-line scenario runner — the harness as a standalone
// tool, so new experiments don't need a recompile.
//
//   $ ./mdp_run policy=adaptive paths=4 load=0.6 chain=overlay
//               duty=0.15 packets=200000 seed=3 csv=1   (one line)
//
// Keys (all optional):
//   policy=single|rss|rr|jsq|lla|flowlet|red2|red3|red4|adaptive
//   paths=N  load=F  chain=NAME  packets=N  warmup=N  flows=N
//   lc=F (latency-critical fraction)   payload=F (mean bytes)
//   duty=F (interference duty; 0 disables)  burst=NS  bursty=0|1 (MMPP)
//   reorder=0|1  lc_priority=0|1  seed=N  csv=0|1
//   trace=0|1 (stage-level tracing)
//   ctrl=0|1 (SLO-driven control plane)
//   telem=0|1 (per-tick telemetry time series; implies ctrl=1)
//   prom=FILE (write the newest telemetry tick as Prometheus text;
//              implies telem=1)
//   json=FILE (write an mdp.run_report.v2 document; "-" = stdout;
//              implies trace=1 unless trace=0 given explicitly;
//              --json FILE / --json=FILE also accepted)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "stats/table.hpp"

using namespace mdp;

int main(int argc, char** argv) {
  std::map<std::string, std::string> kv;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {  // flag-style alias for json=
      kv["json"] = argv[++i];
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      kv["json"] = arg.substr(7);
      continue;
    }
    auto eq_pos = arg.find('=');
    if (eq_pos == std::string::npos) {
      std::fprintf(stderr, "bad argument '%s' (want key=value)\n",
                   argv[i]);
      return 2;
    }
    kv[arg.substr(0, eq_pos)] = arg.substr(eq_pos + 1);
  }
  auto gets = [&](const char* k, const char* dflt) {
    auto it = kv.find(k);
    return it == kv.end() ? std::string(dflt) : it->second;
  };
  auto getd = [&](const char* k, double dflt) {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : std::atof(it->second.c_str());
  };
  auto getu = [&](const char* k, std::uint64_t dflt) {
    auto it = kv.find(k);
    return it == kv.end() ? dflt
                          : std::strtoull(it->second.c_str(), nullptr, 10);
  };

  harness::ScenarioConfig cfg;
  cfg.policy = gets("policy", "adaptive");
  cfg.num_paths = static_cast<std::size_t>(getu("paths", 4));
  cfg.load = getd("load", 0.5);
  cfg.chain = gets("chain", "fw-nat-lb");
  cfg.packets = getu("packets", 200'000);
  cfg.warmup_packets = getu("warmup", cfg.packets / 10);
  cfg.num_flows = static_cast<std::size_t>(getu("flows", 256));
  cfg.lc_fraction = getd("lc", 0.1);
  cfg.mean_payload = getd("payload", 200);
  cfg.bursty_arrivals = getu("bursty", 0) != 0;
  cfg.dp.reorder.enabled = getu("reorder", 1) != 0;
  cfg.dp.lc_priority = getu("lc_priority", 0) != 0;
  cfg.seed = getu("seed", 1);
  double duty = getd("duty", 0.0);
  if (duty > 0) {
    cfg.interference = true;
    cfg.interference_cfg.duty_cycle = duty;
    cfg.interference_cfg.mean_burst_ns = getd("burst", 120'000);
  }
  std::string json_path = gets("json", "");
  cfg.trace = getu("trace", json_path.empty() ? 0 : 1) != 0;
  cfg.telem_prometheus_path = gets("prom", "");
  cfg.telem_enabled =
      getu("telem", cfg.telem_prometheus_path.empty() ? 0 : 1) != 0;
  cfg.ctrl_enabled = getu("ctrl", cfg.telem_enabled ? 1 : 0) != 0;

  harness::ScenarioResult res;
  try {
    res = harness::run_scenario(cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  stats::Table t({"metric", "value"});
  t.add_row({"policy", cfg.policy});
  t.add_row({"paths", stats::fmt_u64(cfg.num_paths)});
  t.add_row({"chain", cfg.chain});
  t.add_row({"offered load", stats::fmt_percent(cfg.load, 0)});
  t.add_row({"packets emitted", stats::fmt_u64(res.emitted)});
  t.add_row({"packets egressed", stats::fmt_u64(res.egressed)});
  t.add_row({"chain filtered", stats::fmt_u64(res.chain_filtered)});
  t.add_row({"p50", stats::format_ns(res.latency.p50())});
  t.add_row({"p99", stats::format_ns(res.latency.p99())});
  t.add_row({"p99.9", stats::format_ns(res.latency.p999())});
  t.add_row({"p99.99", stats::format_ns(res.latency.p9999())});
  t.add_row({"LC p99.9", stats::format_ns(res.lc_latency.p999())});
  t.add_row({"egress Mpps", stats::fmt_double(res.achieved_mpps, 3)});
  t.add_row({"extra copies/pkt", stats::fmt_double(res.replica_fraction, 3)});
  t.add_row({"hedges", stats::fmt_u64(res.hedges)});
  t.add_row({"OOO fraction", stats::fmt_percent(res.ooo_fraction, 2)});
  t.add_row({"reorder timeouts",
             stats::fmt_u64(res.reorder_timeout_releases)});
  for (std::size_t p = 0; p < res.per_path_utilization.size(); ++p)
    t.add_row({"util path " + std::to_string(p),
               stats::fmt_percent(res.per_path_utilization[p], 1)});

  if (!json_path.empty()) {
    // JSON replaces the table when writing to stdout; otherwise both.
    std::string doc = harness::scenario_report_json(cfg, res);
    if (json_path != "-") {
      bool csv = getu("csv", 0) != 0;
      std::printf("%s", csv ? t.to_csv().c_str() : t.to_text().c_str());
    }
    if (!harness::write_text_file(json_path, doc)) {
      std::fprintf(stderr, "failed to write '%s'\n", json_path.c_str());
      return 1;
    }
    return 0;
  }

  bool csv = getu("csv", 0) != 0;
  std::printf("%s", csv ? t.to_csv().c_str() : t.to_text().c_str());
  return 0;
}
