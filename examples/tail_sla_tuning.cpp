// SLA tuning example: "how many last-mile paths and which policy do I
// need to hold p99.9 <= 150us for my latency-critical traffic, under my
// expected noisy-neighbor level — and what does each option cost?"
//
// This is the operator-facing question the multipath data plane answers.
// The program sweeps (policy, k) combinations under the given load and
// interference, and prints every configuration that meets the SLA, ranked
// by core count then replication overhead.
//
//   $ ./tail_sla_tuning
#include <cstdio>
#include <vector>

#include "harness/experiment.hpp"
#include "stats/table.hpp"

using namespace mdp;

int main() {
  constexpr std::uint64_t kSlaP999Ns = 150'000;  // 150us
  constexpr double kLoad = 0.45;                 // of aggregate capacity
  constexpr double kDuty = 0.15;                 // expected neighbor theft

  std::printf("SLA target: p99.9 <= %s for latency-critical traffic\n",
              stats::format_ns(kSlaP999Ns).c_str());
  std::printf("conditions: load=%.0f%% of aggregate, interference duty "
              "%.0f%% on every path\n\n",
              kLoad * 100, kDuty * 100);

  struct Option {
    std::string policy;
    std::size_t k;
    std::uint64_t lc_p999;
    std::uint64_t all_p999;
    double extra_copies;
    bool meets;
  };
  std::vector<Option> options;

  for (std::size_t k : {1u, 2u, 3u, 4u, 6u}) {
    for (const std::string& policy :
         {std::string("single"), std::string("jsq"), std::string("red2"),
          std::string("adaptive")}) {
      if (policy == "red2" && k < 2) continue;
      harness::ScenarioConfig cfg;
      cfg.policy = policy;
      cfg.num_paths = k;
      cfg.load = kLoad;
      cfg.packets = 120'000;
      cfg.warmup_packets = 12'000;
      cfg.lc_fraction = 0.1;
      cfg.interference = true;
      cfg.interference_cfg.duty_cycle = kDuty;
      cfg.interference_cfg.mean_burst_ns = 120'000;
      cfg.seed = 2026;
      auto res = harness::run_scenario(cfg);
      std::uint64_t lc = res.lc_latency.count() ? res.lc_latency.p999()
                                                : res.latency.p999();
      options.push_back({policy, k, lc, res.latency.p999(),
                         res.replica_fraction, lc <= kSlaP999Ns});
    }
  }

  stats::Table t({"paths", "policy", "LC p99.9", "all p99.9",
                  "extra copies/pkt", "meets SLA"});
  for (const auto& o : options)
    t.add_row({stats::fmt_u64(o.k), o.policy,
               stats::format_ns(o.lc_p999), stats::format_ns(o.all_p999),
               stats::fmt_double(o.extra_copies, 2),
               o.meets ? "YES" : "no"});
  std::printf("%s", t.to_text().c_str());

  // Recommendation: cheapest (fewest cores) passing option; ties broken
  // by lowest replication overhead.
  const Option* best = nullptr;
  for (const auto& o : options) {
    if (!o.meets) continue;
    if (best == nullptr || o.k < best->k ||
        (o.k == best->k && o.extra_copies < best->extra_copies))
      best = &o;
  }
  if (best != nullptr) {
    std::printf("\nrecommendation: %zu paths with '%s' (LC p99.9 %s, "
                "%.2f extra copies per packet)\n",
                best->k, best->policy.c_str(),
                stats::format_ns(best->lc_p999).c_str(),
                best->extra_copies);
  } else {
    std::printf("\nno configuration meets the SLA at this load; add "
                "paths, reduce load, or relax the target\n");
  }
  return 0;
}
