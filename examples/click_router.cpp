// Click language example: a self-contained packet-processing graph with a
// source, classification, fan-out, and scheduled queue draining — no
// multipath machinery, just the modular-router substrate.
//
//   $ ./click_router
#include <cstdio>

#include "click/elements.hpp"
#include "click/router.hpp"

using namespace mdp;

int main() {
  sim::EventQueue eq;
  net::PacketPool pool(512, 2048);
  click::Router router(click::Router::Context{&eq, &pool});

  // A classic Click teaching config: source -> classifier splits IPv4
  // from everything else; IPv4 is TTL-decremented, mirrored, queued, and
  // drained by a scheduled Unqueue; a Tee taps a monitor branch.
  const char* config = R"(
    src  :: InfiniteSource(2000, 128, 8);  // 2000 packets, 128B, bursts of 8
    cl   :: Classifier(12/0800, -);        // IPv4 vs rest
    tee  :: Tee;
    q    :: Queue(256);
    uq   :: Unqueue(4);
    fwd  :: Counter;
    tap  :: Counter;
    junk :: Counter;

    src -> cl;
    cl [0] -> DecIPTTL -> EtherMirror -> tee;
    cl [1] -> junk -> Discard;
    tee [0] -> q -> uq -> fwd -> Discard;
    tee [1] -> tap -> Discard;
  )";

  std::string err;
  if (!router.configure(config, &err) || !router.initialize(&err)) {
    std::fprintf(stderr, "config error: %s\n", err.c_str());
    return 1;
  }

  // Drive the task scheduler until the source runs dry and queues drain.
  std::size_t productive = router.scheduler().run(100'000);

  auto* q = router.find_as<click::Queue>("q");
  std::printf("scheduler: %zu productive task firings\n", productive);
  std::printf("source emitted: %llu\n",
              (unsigned long long)router.find_as<click::InfiniteSource>("src")
                  ->emitted());
  std::printf("forwarded: %llu packets\n",
              (unsigned long long)router.find_as<click::Counter>("fwd")
                  ->packets());
  std::printf("monitor tap: %llu packets\n",
              (unsigned long long)router.find_as<click::Counter>("tap")
                  ->packets());
  std::printf("non-IP discarded: %llu\n",
              (unsigned long long)router.find_as<click::Counter>("junk")
                  ->packets());
  std::printf("queue: highwater=%llu drops=%llu residual=%zu\n",
              (unsigned long long)q->highwater(),
              (unsigned long long)q->drops(), q->size());
  std::printf("pool: in_use=%zu (0 means no leaks)\n", pool.in_use());
  return 0;
}
