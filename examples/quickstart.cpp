// Quickstart: the smallest complete mdp program.
//
// Builds a 4-path multipath data plane running the fw-nat-lb chain with
// the AdaptiveMDP policy, attaches a noisy neighbor to one path, pushes
// traffic through it, and prints the latency distribution — ~40 lines of
// API surface.
//
//   $ ./quickstart
#include <cstdio>

#include "core/dataplane.hpp"
#include "sim/interference.hpp"
#include "stats/histogram.hpp"
#include "workload/traffic_gen.hpp"

using namespace mdp;

int main() {
  // 1. Simulation substrate: a virtual clock and a packet pool.
  sim::EventQueue eq;
  net::PacketPool pool(4096, 2048);

  // 2. The multipath last mile: 4 paths, each a core + NF-chain replica.
  core::DataPlaneConfig cfg;
  cfg.num_paths = 4;
  cfg.chain = "fw-nat-lb";
  core::MdpDataPlane dp(eq, pool, cfg, core::make_scheduler("adaptive"));

  // 3. Measure latency at the egress.
  stats::LatencyHistogram latency;
  dp.set_egress([&](net::PacketPtr pkt) {
    latency.record(pkt->anno().egress_ns - pkt->anno().ingress_ns);
  });

  // 4. A noisy neighbor stealing 20% of path 0's core.
  sim::InterferenceConfig noise_cfg;
  noise_cfg.duty_cycle = 0.2;
  sim::InterferenceModel noise(eq, dp.core(0), noise_cfg, /*seed=*/7);
  noise.start();

  // 5. Open-loop traffic: Poisson arrivals, 256 flows, 10% of them
  //    latency-critical (those get replicated across 2 paths).
  workload::TrafficGenConfig gen_cfg;
  gen_cfg.latency_critical_fraction = 0.1;
  workload::TrafficGen gen(
      eq, pool, gen_cfg,
      std::make_unique<workload::PoissonArrivals>(600.0),  // ~1.7 Mpps
      [&](net::PacketPtr pkt) { dp.ingress(std::move(pkt)); });
  gen.start(100'000);

  // 6. Run 200ms of virtual time.
  eq.run_until(200 * sim::kMillisecond);

  std::printf("egressed %llu/%llu packets\n",
              (unsigned long long)dp.egress_count(),
              (unsigned long long)gen.emitted());
  std::printf("latency: %s\n", latency.summary().c_str());
  std::printf("counters: %s\n", dp.counters().to_string().c_str());
  for (std::size_t p = 0; p < cfg.num_paths; ++p)
    std::printf("path %zu: dispatched=%llu completed=%llu ewma=%s\n", p,
                (unsigned long long)dp.monitor().dispatched(p),
                (unsigned long long)dp.monitor().completed(p),
                stats::format_ns(static_cast<std::uint64_t>(
                                     dp.monitor().ewma_latency_ns(p)))
                    .c_str());
  return 0;
}
